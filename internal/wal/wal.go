// Package wal implements the write-ahead log that makes DML durable
// between snapshots: an append-only, segmented log of logical tuple
// records (see logical.go) with length + CRC32-C framing. The engine
// appends every successful mutating statement's records — one per
// changed tuple, a whole transaction as one atomic batch — and
// recdb.OpenDir replays the records whose sequence numbers exceed the
// loaded snapshot's high-water mark.
//
// On-disk format (DESIGN.md §8, §12): each segment file is named
// wal-<first-seq 16 digits>.log and starts with a 6-byte header naming
// its payload format — "RDBW2\n" for logical tuple records, "RDBW1\n"
// for the legacy SQL-statement-text payloads (still replayable, so a
// database whose log predates the logical format recovers and is then
// rewritten at the post-recovery checkpoint) — followed by records:
//
//	len   uint32 LE   payload length
//	crc   uint32 LE   CRC32-C over seq + payload
//	seq   uint64 LE   sequence number, strictly increasing
//	payload []byte
//
// A record that fails validation at the tail of the final segment is a
// torn write from a crash mid-append: replay truncates there and the
// database reopens with every synced record intact. A bad record
// anywhere else is corruption and fails replay with a typed error.
//
// Sync policy: SyncEvery = 1 fsyncs after every append (each commit is
// durable before the statement returns); SyncEvery = n groups n appends
// per fsync (a crash can lose the last < n commits); SyncEvery < 0 never
// fsyncs (durability rides on snapshot checkpoints alone).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"path"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"recdb/internal/fault"
	"recdb/internal/metrics"
)

const (
	segmentPrefix  = "wal-"
	segmentSuffix  = ".log"
	segmentMagicV1 = "RDBW1\n" // payloads are SQL statement text
	segmentMagicV2 = "RDBW2\n" // payloads are logical records (logical.go)
	segmentMagic   = segmentMagicV2
	magicLen       = len(segmentMagic)
	// recordHeaderSize is len + crc + seq.
	recordHeaderSize = 4 + 4 + 8
	// maxRecordSize bounds a declared payload length so a corrupt header
	// cannot drive a huge allocation.
	maxRecordSize = 16 << 20
	// defaultSegmentBytes rolls segments at 4 MiB.
	defaultSegmentBytes = 4 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by appends to a closed log.
var ErrClosed = errors.New("wal: log is closed")

// CorruptError describes a WAL record that failed validation somewhere
// other than the final segment's tail.
type CorruptError struct {
	Path   string
	Offset int64
	Reason string
}

// Error implements error.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: %s at offset %d: %s", e.Path, e.Offset, e.Reason)
}

// Metrics is the set of optional instruments the log records into. Every
// field may be nil (the zero Metrics disables instrumentation entirely);
// nil instruments are no-ops per the internal/metrics contract, so the
// append path pays nothing when unwired.
type Metrics struct {
	// Appends counts records appended.
	Appends *metrics.Counter
	// AppendBytes counts payload bytes appended.
	AppendBytes *metrics.Counter
	// Syncs counts fsync calls issued on segment files.
	Syncs *metrics.Counter
	// SyncNanos records fsync wall time.
	SyncNanos *metrics.Histogram
	// BatchSize records how many appends each fsync made durable — the
	// realized group-commit batch under SyncEvery > 1.
	BatchSize *metrics.Histogram
}

// Options tunes a log.
type Options struct {
	// SyncEvery is the group-commit factor: 1 (or 0, the default) fsyncs
	// every append, n > 1 fsyncs every n appends, negative never fsyncs.
	SyncEvery int
	// SyncInterval bounds group-commit latency: with SyncEvery > 1, the
	// log fsyncs after SyncEvery appends or SyncInterval after the first
	// unsynced append, whichever comes first — so a burst that ends
	// mid-group does not strand its tail until the next burst. 0 disables
	// the bound; it has no effect under per-commit sync (SyncEvery <= 1,
	// every append syncs anyway) or never-sync (SyncEvery < 0, the caller
	// chose checkpoint-only durability).
	SyncInterval time.Duration
	// SegmentBytes rolls to a new segment file once the current one
	// exceeds this size (0 = 4 MiB).
	SegmentBytes int64
	// Metrics receives append/sync instrumentation; the zero value
	// records nothing.
	Metrics Metrics

	// afterFunc schedules the SyncInterval flush (nil = time.AfterFunc).
	// It is a test seam: the fake-clock tests capture the callback and
	// fire it deterministically.
	afterFunc func(d time.Duration, f func())
}

func (o Options) withDefaults() Options {
	if o.SyncEvery == 0 {
		o.SyncEvery = 1
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = defaultSegmentBytes
	}
	return o
}

// Log is an open write-ahead log.
type Log struct {
	fs   fault.FS
	dir  string
	opts Options

	mu       sync.Mutex
	seq      uint64 // last assigned sequence number
	f        fault.File
	fPath    string
	fSize    int64
	unsynced int
	// flushGen invalidates pending SyncInterval timers: it advances every
	// time the unsynced batch reaches disk (or is discarded), so a timer
	// armed for an already-flushed batch fires as a no-op instead of
	// syncing a newer batch early.
	flushGen uint64
	closed   bool
	// poisoned is set when an append's write or sync fails: the segment
	// may hold a record whose statement was reported failed, so the log
	// refuses further appends and never flushes the ambiguous bytes —
	// Close skips the sync and a crash discards them. Reset (a
	// checkpoint) clears the segments and the poison with them.
	poisoned error
}

// segName renders the segment file name for its first record's sequence.
func segName(firstSeq uint64) string {
	return fmt.Sprintf("%s%016d%s", segmentPrefix, firstSeq, segmentSuffix)
}

// parseSegName extracts the first-sequence number from a segment name.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix)
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// listSegments returns the segment names in dir, ordered by first
// sequence number.
func listSegments(fs fault.FS, dir string) ([]string, error) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		if fault.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []string
	for _, name := range names {
		if _, ok := parseSegName(name); ok {
			segs = append(segs, name)
		}
	}
	sort.Slice(segs, func(i, j int) bool {
		a, _ := parseSegName(segs[i])
		b, _ := parseSegName(segs[j])
		return a < b
	})
	return segs, nil
}

// Open creates (or reattaches to) the log in dir. startSeq is the floor
// for new sequence numbers — the caller passes the highest sequence it
// has observed (snapshot high-water mark or last replayed record), and
// appends continue from there. Open always starts a fresh segment; old
// segments are left for replay until the next Reset.
func Open(fs fault.FS, dir string, startSeq uint64, opts Options) (*Log, error) {
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{fs: fs, dir: dir, opts: opts.withDefaults(), seq: startSeq}
	if err := l.openSegmentLocked(); err != nil {
		return nil, err
	}
	return l, nil
}

// openSegmentLocked starts the segment file for the next record and makes
// its directory entry durable.
func (l *Log) openSegmentLocked() error {
	name := segName(l.seq + 1)
	p := path.Join(l.dir, name)
	f, err := l.fs.Create(p)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write([]byte(segmentMagic)); err != nil {
		cerr := f.Close()
		return errors.Join(fmt.Errorf("wal: write %s header: %w", p, err), cerr)
	}
	if err := f.Sync(); err != nil {
		cerr := f.Close()
		return errors.Join(fmt.Errorf("wal: sync %s: %w", p, err), cerr)
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		cerr := f.Close()
		return errors.Join(fmt.Errorf("wal: %w", err), cerr)
	}
	l.f, l.fPath, l.fSize, l.unsynced = f, p, int64(len(segmentMagic)), 0
	return nil
}

// Append writes one record and applies the sync policy. It returns the
// record's sequence number; when it returns without error under
// SyncEvery <= 1, the record is durable.
func (l *Log) Append(payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.poisoned != nil {
		return 0, fmt.Errorf("wal: log poisoned by an earlier append failure (reopen to recover): %w", l.poisoned)
	}
	if int64(len(payload)) > maxRecordSize {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds the %d-byte bound", len(payload), maxRecordSize)
	}
	if l.fSize >= l.opts.SegmentBytes {
		if err := l.rollLocked(); err != nil {
			return 0, err
		}
	}
	seq := l.seq + 1
	rec := make([]byte, recordHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(rec[8:16], seq)
	copy(rec[16:], payload)
	binary.LittleEndian.PutUint32(rec[4:8], crc32.Checksum(rec[8:], castagnoli))
	if _, err := l.f.Write(rec); err != nil {
		// The segment may hold a prefix of the record: poison the log so
		// the ambiguous bytes are never flushed or appended after.
		l.poisoned = err
		return 0, fmt.Errorf("wal: append seq %d: %w", seq, err)
	}
	// The record is in the segment; assign the sequence even if the sync
	// below fails — it is burned either way, and the snapshot high-water
	// mark must never move backwards past it.
	l.seq = seq
	l.fSize += int64(len(rec))
	l.unsynced++
	l.opts.Metrics.Appends.Inc()
	l.opts.Metrics.AppendBytes.Add(int64(len(payload)))
	if l.opts.SyncEvery > 0 && l.unsynced >= l.opts.SyncEvery {
		if err := l.syncLocked(); err != nil {
			// The caller will report this statement failed, but its bytes
			// sit unsynced in the segment: poison the log so no later sync
			// quietly makes the "failed" statement durable after all.
			l.poisoned = err
			return seq, err
		}
	} else if l.opts.SyncInterval > 0 && l.opts.SyncEvery > 1 && l.unsynced == 1 {
		// First commit of a new group: bound how long it can sit unsynced.
		l.armTimerLocked()
	}
	return seq, nil
}

// AppendBatch writes a group of records — a transaction's begin, tuple,
// and commit records — with consecutive sequence numbers in a single
// write under one mutex hold, so no other append can interleave inside
// the group and the group occupies a contiguous byte range of one
// segment. A crash mid-write tears the group's suffix (the framing
// catches it exactly like a torn single record), which leaves the
// transaction without its commit record — recovery then discards it
// wholesale, never applying a partial transaction.
//
// The batch counts as one commit for the group-commit sync policy, and
// it returns the sequence number assigned to the last record; when it
// returns without error under SyncEvery <= 1, the whole group is
// durable.
func (l *Log) AppendBatch(payloads [][]byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.poisoned != nil {
		return 0, fmt.Errorf("wal: log poisoned by an earlier append failure (reopen to recover): %w", l.poisoned)
	}
	if len(payloads) == 0 {
		return l.seq, nil
	}
	total := 0
	for _, p := range payloads {
		if int64(len(p)) > maxRecordSize {
			return 0, fmt.Errorf("wal: record of %d bytes exceeds the %d-byte bound", len(p), maxRecordSize)
		}
		total += recordHeaderSize + len(p)
	}
	// Roll before the batch, never inside it: the group stays contiguous
	// in one segment (an oversized batch simply makes an oversized
	// segment).
	if l.fSize >= l.opts.SegmentBytes {
		if err := l.rollLocked(); err != nil {
			return 0, err
		}
	}
	buf := make([]byte, 0, total)
	seq := l.seq
	var bytes int64
	for _, p := range payloads {
		seq++
		rec := make([]byte, recordHeaderSize+len(p))
		binary.LittleEndian.PutUint32(rec[0:4], uint32(len(p)))
		binary.LittleEndian.PutUint64(rec[8:16], seq)
		copy(rec[16:], p)
		binary.LittleEndian.PutUint32(rec[4:8], crc32.Checksum(rec[8:], castagnoli))
		buf = append(buf, rec...)
		bytes += int64(len(p))
	}
	if _, err := l.f.Write(buf); err != nil {
		// The segment may hold a prefix of the group: poison the log so
		// the ambiguous bytes are never flushed or appended after.
		l.poisoned = err
		return 0, fmt.Errorf("wal: append batch at seq %d: %w", l.seq+1, err)
	}
	// Sequences are burned even if the sync below fails (see Append).
	l.seq = seq
	l.fSize += int64(len(buf))
	l.unsynced++ // the group is one commit unit
	l.opts.Metrics.Appends.Add(int64(len(payloads)))
	l.opts.Metrics.AppendBytes.Add(bytes)
	if l.opts.SyncEvery > 0 && l.unsynced >= l.opts.SyncEvery {
		if err := l.syncLocked(); err != nil {
			l.poisoned = err
			return seq, err
		}
	} else if l.opts.SyncInterval > 0 && l.opts.SyncEvery > 1 && l.unsynced == 1 {
		l.armTimerLocked()
	}
	return seq, nil
}

// armTimerLocked schedules a flush of the current unsynced batch
// SyncInterval from now. The captured generation makes the callback a
// no-op if the batch reaches disk first.
func (l *Log) armTimerLocked() {
	gen := l.flushGen
	after := l.opts.afterFunc
	if after == nil {
		after = func(d time.Duration, f func()) { time.AfterFunc(d, f) }
	}
	after(l.opts.SyncInterval, func() { l.flushDue(gen) })
}

// flushDue is the SyncInterval timer callback: it syncs the batch the
// timer was armed for, unless that batch already reached disk (generation
// advanced), the log is closed or poisoned, or there is nothing to flush.
// A background fsync failure poisons the log exactly like a group-commit
// sync failure in Append: the batch's statements were acknowledged only
// as "durable by the next sync", and that sync can no longer be trusted.
func (l *Log) flushDue(gen uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.poisoned != nil || gen != l.flushGen || l.unsynced == 0 {
		return
	}
	if err := l.fsyncLocked(); err != nil {
		l.poisoned = err
		return
	}
	l.markSyncedLocked()
}

// markSyncedLocked records that the unsynced batch reached disk (or was
// discarded), invalidating any pending interval timer.
func (l *Log) markSyncedLocked() {
	l.unsynced = 0
	l.flushGen++
}

// rollLocked syncs and closes the current segment and starts the next.
func (l *Log) rollLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: close %s: %w", l.fPath, err)
	}
	return l.openSegmentLocked()
}

func (l *Log) syncLocked() error {
	if l.unsynced == 0 || l.opts.SyncEvery < 0 {
		l.markSyncedLocked()
		return nil
	}
	if err := l.fsyncLocked(); err != nil {
		return fmt.Errorf("wal: sync %s: %w", l.fPath, err)
	}
	l.markSyncedLocked()
	return nil
}

// fsyncLocked flushes the current segment, recording sync latency and the
// realized group-commit batch size on success.
func (l *Log) fsyncLocked() error {
	m := &l.opts.Metrics
	var start time.Time
	if m.SyncNanos != nil {
		start = time.Now()
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	m.Syncs.Inc()
	m.SyncNanos.ObserveSince(start)
	m.BatchSize.Observe(int64(l.unsynced))
	return nil
}

// Sync forces any grouped, not-yet-synced records to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.poisoned != nil {
		return fmt.Errorf("wal: log poisoned by an earlier append failure (reopen to recover): %w", l.poisoned)
	}
	if l.unsynced == 0 {
		return nil
	}
	if err := l.fsyncLocked(); err != nil {
		return fmt.Errorf("wal: sync %s: %w", l.fPath, err)
	}
	l.markSyncedLocked()
	return nil
}

// Seq returns the last assigned sequence number.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Reset discards every segment after a checkpoint: the snapshot now owns
// everything the log recorded. Sequence numbers keep increasing across
// the reset, so the snapshot's high-water mark stays a valid replay
// floor.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: close %s: %w", l.fPath, err)
	}
	segs, err := listSegments(l.fs, l.dir)
	if err != nil {
		return err
	}
	for _, name := range segs {
		if err := l.fs.Remove(path.Join(l.dir, name)); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	// The ambiguous bytes (if any) are gone with the segments.
	l.poisoned = nil
	return l.openSegmentLocked()
}

// Close syncs and closes the log. A poisoned log is closed without the
// final sync, so a record whose append was reported failed cannot be
// flushed to durability on the way out.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	serr := error(nil)
	if l.unsynced > 0 && l.opts.SyncEvery >= 0 && l.poisoned == nil {
		if err := l.f.Sync(); err != nil {
			serr = fmt.Errorf("wal: sync %s: %w", l.fPath, err)
		}
	}
	if err := l.f.Close(); err != nil && serr == nil {
		serr = fmt.Errorf("wal: close %s: %w", l.fPath, err)
	}
	return serr
}

// Replay scans every segment in dir in order and calls fn for each valid
// record with sequence number > afterSeq, returning the highest sequence
// seen (afterSeq when the log is empty). Records at or below afterSeq are
// skipped — they are already in the snapshot — which is what makes
// replay idempotent. version is the payload format of the record's
// segment: 2 for logical records (DecodeRecord), 1 for legacy SQL
// statement text. A validation failure at the tail of the final segment
// is treated as a torn write and truncates replay; anywhere else it
// returns a *CorruptError.
func Replay(fs fault.FS, dir string, afterSeq uint64, fn func(seq uint64, version int, payload []byte) error) (uint64, error) {
	segs, err := listSegments(fs, dir)
	if err != nil {
		return afterSeq, err
	}
	last := afterSeq
	for i, name := range segs {
		final := i == len(segs)-1
		p := path.Join(dir, name)
		blob, err := fs.ReadFile(p)
		if err != nil {
			return last, fmt.Errorf("wal: %w", err)
		}
		stop, err := replaySegment(p, blob, final, afterSeq, &last, fn)
		if err != nil {
			return last, err
		}
		if stop {
			break
		}
	}
	return last, nil
}

// replaySegment walks one segment's records. It returns stop = true when
// it hit a torn tail (only allowed in the final segment).
func replaySegment(p string, blob []byte, final bool, afterSeq uint64, last *uint64, fn func(uint64, int, []byte) error) (bool, error) {
	torn := func(off int64, reason string) (bool, error) {
		if final {
			return true, nil // torn tail: everything before it is intact
		}
		return false, &CorruptError{Path: p, Offset: off, Reason: reason}
	}
	if len(blob) < magicLen {
		return torn(0, "segment shorter than its header")
	}
	version := 0
	switch string(blob[:magicLen]) {
	case segmentMagicV2:
		version = 2
	case segmentMagicV1:
		version = 1
	default:
		// A wrong magic is corruption even in the final segment: the
		// header is written and synced before any record.
		return false, &CorruptError{Path: p, Offset: 0, Reason: "not a WAL segment"}
	}
	off := int64(magicLen)
	rest := blob[magicLen:]
	for len(rest) > 0 {
		if len(rest) < recordHeaderSize {
			return torn(off, "truncated record header")
		}
		payloadLen := int64(binary.LittleEndian.Uint32(rest[0:4]))
		if payloadLen > maxRecordSize {
			return torn(off, fmt.Sprintf("record declares %d bytes", payloadLen))
		}
		total := recordHeaderSize + payloadLen
		if int64(len(rest)) < total {
			return torn(off, "truncated record payload")
		}
		wantCRC := binary.LittleEndian.Uint32(rest[4:8])
		if got := crc32.Checksum(rest[8:total], castagnoli); got != wantCRC {
			return torn(off, fmt.Sprintf("record checksum mismatch (%08x != %08x)", got, wantCRC))
		}
		seq := binary.LittleEndian.Uint64(rest[8:16])
		if seq <= *last && seq > afterSeq {
			return false, &CorruptError{Path: p, Offset: off, Reason: fmt.Sprintf("sequence %d out of order after %d", seq, *last)}
		}
		if seq > afterSeq {
			if err := fn(seq, version, rest[16:total]); err != nil {
				return false, fmt.Errorf("wal: replaying seq %d: %w", seq, err)
			}
			*last = seq
		}
		rest = rest[total:]
		off += total
	}
	return false, nil
}
