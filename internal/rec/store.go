package rec

import (
	"encoding/base64"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"recdb/internal/ann"
	"recdb/internal/catalog"
	"recdb/internal/storage"
	"recdb/internal/types"
)

// ModelStore is a recommendation model materialized into catalog heap
// tables, the way RecDB stores models inside the database (§IV-A). The
// RECOMMEND operator family reads these tables through the buffer pool, so
// model access is page I/O like any other relational access path.
//
// Tables per algorithm (all prefixed "_rec_<name>_"):
//
//	all:      uservector        (uid, iid, ratingval)  sorted by uid, indexed on uid and iid
//	ItemCF:   itemneighborhood  (iid, niid, sim)       sorted by iid, indexed on iid
//	UserCF:   userneighborhood  (uid, nuid, sim)       sorted by uid, indexed on uid
//	UserCF:   itemvector        (iid, uid, ratingval)  sorted by iid, indexed on iid
//	SVD:      userfactor        (uid pk, features)
//	SVD:      itemfactor        (iid pk, features)
//	SVD:      annivf            (seq pk, chunk)  serialized IVF index
//	Popularity: itemscore       (iid pk, score)
type ModelStore struct {
	Algo             Algorithm
	UserVector       *catalog.Table
	ItemNeighborhood *catalog.Table
	UserNeighborhood *catalog.Table
	ItemVector       *catalog.Table
	UserFactor       *catalog.Table
	ItemFactor       *catalog.Table
	ItemScore        *catalog.Table
	AnnIVF           *catalog.Table
	K                int // SVD factor count

	userIDs []int64
	itemIDs []int64
	itemSet map[int64]bool
	names   []string // owned table names, for Drop

	// Lazily decoded IVF index; decoding from the annivf table on first
	// use (rather than carrying the in-memory build product) means every
	// fresh store — including one rebuilt by crash recovery — exercises
	// the persisted bytes, and a corrupt blob is detected here and served
	// as "no index" so the planner falls back to the exact scan.
	annMu   sync.Mutex
	ann     *ann.Index
	annErr  error
	annDone bool
}

// prefixFor builds the reserved table-name prefix for a recommender.
func prefixFor(recommender string) string {
	return "_rec_" + strings.ToLower(recommender) + "_"
}

// Materialize writes a built model into fresh catalog tables owned by the
// named recommender, replacing any previous materialization.
func Materialize(cat *catalog.Catalog, recommender string, m Model) (*ModelStore, error) {
	prefix := prefixFor(recommender)
	DropTables(cat, recommender)

	s := &ModelStore{Algo: m.Algorithm(), userIDs: m.Users(), itemIDs: m.Items()}
	s.itemSet = make(map[int64]bool, len(s.itemIDs))
	for _, i := range s.itemIDs {
		s.itemSet[i] = true
	}

	create := func(suffix string, schema *types.Schema, pk int) (*catalog.Table, error) {
		name := prefix + suffix
		t, err := cat.CreateTable(name, schema, pk)
		if err != nil {
			return nil, err
		}
		s.names = append(s.names, name)
		return t, nil
	}

	// uservector, sorted by uid so Algorithm 1's outer scan sees users
	// contiguously.
	uv, err := create("uservector", types.NewSchema(
		types.Column{Name: "uid", Kind: types.KindInt},
		types.Column{Name: "iid", Kind: types.KindInt},
		types.Column{Name: "ratingval", Kind: types.KindFloat},
	), -1)
	if err != nil {
		return nil, err
	}
	for _, r := range m.Ratings() {
		if _, err := uv.Insert(types.Row{types.NewInt(r.User), types.NewInt(r.Item), types.NewFloat(r.Value)}); err != nil {
			return nil, err
		}
	}
	if _, err := uv.CreateIndex(prefix+"uservector_uid", "uid"); err != nil {
		return nil, err
	}
	if _, err := uv.CreateIndex(prefix+"uservector_iid", "iid"); err != nil {
		return nil, err
	}
	s.UserVector = uv

	switch model := m.(type) {
	case *NeighborhoodModel:
		if model.algo.ItemBased() {
			in, err := create("itemneighborhood", types.NewSchema(
				types.Column{Name: "iid", Kind: types.KindInt},
				types.Column{Name: "niid", Kind: types.KindInt},
				types.Column{Name: "sim", Kind: types.KindFloat},
			), -1)
			if err != nil {
				return nil, err
			}
			for _, i := range s.itemIDs {
				for _, n := range model.Neighbors(i) {
					if _, err := in.Insert(types.Row{types.NewInt(i), types.NewInt(n.ID), types.NewFloat(n.Sim)}); err != nil {
						return nil, err
					}
				}
			}
			if _, err := in.CreateIndex(prefix+"itemneighborhood_iid", "iid"); err != nil {
				return nil, err
			}
			s.ItemNeighborhood = in
		} else {
			un, err := create("userneighborhood", types.NewSchema(
				types.Column{Name: "uid", Kind: types.KindInt},
				types.Column{Name: "nuid", Kind: types.KindInt},
				types.Column{Name: "sim", Kind: types.KindFloat},
			), -1)
			if err != nil {
				return nil, err
			}
			for _, u := range s.userIDs {
				for _, n := range model.Neighbors(u) {
					if _, err := un.Insert(types.Row{types.NewInt(u), types.NewInt(n.ID), types.NewFloat(n.Sim)}); err != nil {
						return nil, err
					}
				}
			}
			if _, err := un.CreateIndex(prefix+"userneighborhood_uid", "uid"); err != nil {
				return nil, err
			}
			s.UserNeighborhood = un

			iv, err := create("itemvector", types.NewSchema(
				types.Column{Name: "iid", Kind: types.KindInt},
				types.Column{Name: "uid", Kind: types.KindInt},
				types.Column{Name: "ratingval", Kind: types.KindFloat},
			), -1)
			if err != nil {
				return nil, err
			}
			byItem := make(map[int64][]Rating)
			for _, r := range m.Ratings() {
				byItem[r.Item] = append(byItem[r.Item], r)
			}
			for _, i := range s.itemIDs {
				for _, r := range byItem[i] {
					if _, err := iv.Insert(types.Row{types.NewInt(i), types.NewInt(r.User), types.NewFloat(r.Value)}); err != nil {
						return nil, err
					}
				}
			}
			if _, err := iv.CreateIndex(prefix+"itemvector_iid", "iid"); err != nil {
				return nil, err
			}
			s.ItemVector = iv
		}
	case *FactorModel:
		s.K = model.K
		uf, err := create("userfactor", types.NewSchema(
			types.Column{Name: "uid", Kind: types.KindInt},
			types.Column{Name: "features", Kind: types.KindText},
		), 0)
		if err != nil {
			return nil, err
		}
		for _, u := range s.userIDs {
			if _, err := uf.Insert(types.Row{types.NewInt(u), types.NewText(encodeVec(model.UserFactors[u]))}); err != nil {
				return nil, err
			}
		}
		s.UserFactor = uf
		itf, err := create("itemfactor", types.NewSchema(
			types.Column{Name: "iid", Kind: types.KindInt},
			types.Column{Name: "features", Kind: types.KindText},
		), 0)
		if err != nil {
			return nil, err
		}
		for _, i := range s.itemIDs {
			if _, err := itf.Insert(types.Row{types.NewInt(i), types.NewText(encodeVec(model.ItemFactors[i]))}); err != nil {
				return nil, err
			}
		}
		s.ItemFactor = itf
		if model.IVF != nil && model.IVF.NumCentroids() > 0 {
			at, err := create("annivf", types.NewSchema(
				types.Column{Name: "seq", Kind: types.KindInt},
				types.Column{Name: "chunk", Kind: types.KindText},
			), 0)
			if err != nil {
				return nil, err
			}
			enc := base64.StdEncoding.EncodeToString(model.IVF.Encode())
			const chunkLen = 4096
			for seq := 0; len(enc) > 0; seq++ {
				n := chunkLen
				if n > len(enc) {
					n = len(enc)
				}
				if _, err := at.Insert(types.Row{types.NewInt(int64(seq)), types.NewText(enc[:n])}); err != nil {
					return nil, err
				}
				enc = enc[n:]
			}
			s.AnnIVF = at
		}
	case *PopularityModel:
		isc, err := create("itemscore", types.NewSchema(
			types.Column{Name: "iid", Kind: types.KindInt},
			types.Column{Name: "score", Kind: types.KindFloat},
		), 0)
		if err != nil {
			return nil, err
		}
		for _, i := range s.itemIDs {
			score, _ := model.Score(i)
			if _, err := isc.Insert(types.Row{types.NewInt(i), types.NewFloat(score)}); err != nil {
				return nil, err
			}
		}
		s.ItemScore = isc
	default:
		return nil, fmt.Errorf("rec: cannot materialize model type %T", m)
	}
	return s, nil
}

// DropTables removes every materialized table owned by the named
// recommender. Missing tables are ignored.
func DropTables(cat *catalog.Catalog, recommender string) {
	prefix := prefixFor(recommender)
	for _, suffix := range []string{
		"uservector", "itemneighborhood", "userneighborhood",
		"itemvector", "userfactor", "itemfactor", "itemscore", "annivf",
	} {
		if cat.Has(prefix + suffix) {
			_ = cat.DropTable(prefix + suffix)
		}
	}
}

func encodeVec(v []float64) string {
	parts := make([]string, len(v))
	for i, f := range v {
		parts[i] = strconv.FormatFloat(f, 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}

func decodeVec(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		f, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("rec: bad factor vector: %w", err)
		}
		out[i] = f
	}
	return out, nil
}

// UserIDs returns all user ids known to the model, ascending.
func (s *ModelStore) UserIDs() []int64 { return s.userIDs }

// ItemIDs returns all item ids known to the model, ascending.
func (s *ModelStore) ItemIDs() []int64 { return s.itemIDs }

// HasItem reports whether the model knows item i (i.e. it had at least one
// rating when the model was built).
func (s *ModelStore) HasItem(i int64) bool { return s.itemSet[i] }

// UserItems fetches user u's rated items (iid → rating) via the uservector
// uid index.
func (s *ModelStore) UserItems(u int64) (map[int64]float64, error) {
	idx, ok := s.UserVector.IndexOn("uid")
	if !ok {
		return nil, fmt.Errorf("rec: uservector has no uid index")
	}
	out := make(map[int64]float64)
	var scanErr error
	idx.ScanIndex(types.NewInt(u), types.NewInt(u), func(rid storage.RID) bool {
		row, err := s.UserVector.Heap.Get(rid)
		if err != nil {
			scanErr = err
			return false
		}
		out[row[1].Int()] = row[2].Float()
		return true
	})
	return out, scanErr
}

// ItemRaters fetches the users who rated item i (uid → rating) via the
// itemvector iid index (user-based algorithms).
func (s *ModelStore) ItemRaters(i int64) (map[int64]float64, error) {
	if s.ItemVector == nil {
		return nil, fmt.Errorf("rec: model has no itemvector table")
	}
	idx, ok := s.ItemVector.IndexOn("iid")
	if !ok {
		return nil, fmt.Errorf("rec: itemvector has no iid index")
	}
	out := make(map[int64]float64)
	var scanErr error
	idx.ScanIndex(types.NewInt(i), types.NewInt(i), func(rid storage.RID) bool {
		row, err := s.ItemVector.Heap.Get(rid)
		if err != nil {
			scanErr = err
			return false
		}
		out[row[1].Int()] = row[2].Float()
		return true
	})
	return out, scanErr
}

// ItemNeighbors fetches item i's similarity list via the itemneighborhood
// iid index, sorted by descending |sim|.
func (s *ModelStore) ItemNeighbors(i int64) ([]Neighbor, error) {
	return s.neighborsFrom(s.ItemNeighborhood, "iid", i)
}

// UserNeighbors fetches user u's similarity list via the userneighborhood
// uid index, sorted by descending |sim|.
func (s *ModelStore) UserNeighbors(u int64) ([]Neighbor, error) {
	return s.neighborsFrom(s.UserNeighborhood, "uid", u)
}

func (s *ModelStore) neighborsFrom(t *catalog.Table, col string, id int64) ([]Neighbor, error) {
	if t == nil {
		return nil, fmt.Errorf("rec: model has no %s neighborhood table", col)
	}
	idx, ok := t.IndexOn(col)
	if !ok {
		return nil, fmt.Errorf("rec: neighborhood table has no %s index", col)
	}
	var out []Neighbor
	var scanErr error
	idx.ScanIndex(types.NewInt(id), types.NewInt(id), func(rid storage.RID) bool {
		row, err := t.Heap.Get(rid)
		if err != nil {
			scanErr = err
			return false
		}
		out = append(out, Neighbor{ID: row[1].Int(), Sim: row[2].Float()})
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	sort.Slice(out, func(a, b int) bool {
		sa, sb := abs(out[a].Sim), abs(out[b].Sim)
		if sa != sb {
			return sa > sb
		}
		return out[a].ID < out[b].ID
	})
	return out, nil
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// UserFactors fetches user u's latent factor vector (SVD).
func (s *ModelStore) UserFactors(u int64) ([]float64, error) {
	return s.factorsFrom(s.UserFactor, u)
}

// ItemFactors fetches item i's latent factor vector (SVD).
func (s *ModelStore) ItemFactors(i int64) ([]float64, error) {
	return s.factorsFrom(s.ItemFactor, i)
}

func (s *ModelStore) factorsFrom(t *catalog.Table, id int64) ([]float64, error) {
	if t == nil {
		return nil, fmt.Errorf("rec: model has no factor tables")
	}
	row, _, found, err := t.LookupPK(types.NewInt(id))
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, nil
	}
	return decodeVec(row[1].Text())
}

// ANN returns the model's IVF index over item latent factors, decoding
// the annivf table on first use. It returns (nil, nil) when the model has
// no index (non-SVD algorithms) and (nil, err) when the persisted blob is
// corrupt; callers treat nil as "use the exact scan". The decode result is
// cached, so a corrupt index reports its error once per store and then
// keeps falling back.
func (s *ModelStore) ANN() (*ann.Index, error) {
	if s.AnnIVF == nil {
		return nil, nil
	}
	s.annMu.Lock()
	defer s.annMu.Unlock()
	if s.annDone {
		return s.ann, s.annErr
	}
	s.annDone = true
	s.ann, s.annErr = s.decodeANN()
	return s.ann, s.annErr
}

// decodeANN reassembles the base64 chunks of the annivf table in seq order
// and decodes the CRC-framed index.
func (s *ModelStore) decodeANN() (*ann.Index, error) {
	type chunk struct {
		seq  int64
		text string
	}
	var chunks []chunk
	it := s.AnnIVF.Heap.Scan()
	defer it.Close()
	for {
		row, _, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		chunks = append(chunks, chunk{row[0].Int(), row[1].Text()})
	}
	sort.Slice(chunks, func(a, b int) bool { return chunks[a].seq < chunks[b].seq })
	var enc strings.Builder
	for i, c := range chunks {
		if c.seq != int64(i) {
			return nil, fmt.Errorf("rec: ann index chunk sequence broken at %d (seq %d)", i, c.seq)
		}
		enc.WriteString(c.text)
	}
	blob, err := base64.StdEncoding.DecodeString(enc.String())
	if err != nil {
		return nil, fmt.Errorf("rec: ann index chunks undecodable: %w", err)
	}
	return ann.Decode(blob)
}

// ItemScoreOf fetches an item's non-personalized score (Popularity).
func (s *ModelStore) ItemScoreOf(i int64) (float64, bool, error) {
	if s.ItemScore == nil {
		return 0, false, fmt.Errorf("rec: model has no itemscore table")
	}
	row, _, found, err := s.ItemScore.LookupPK(types.NewInt(i))
	if err != nil || !found {
		return 0, false, err
	}
	return row[1].Float(), true, nil
}

// Seen returns the rating user u gave item i, looked up in the uservector
// table.
func (s *ModelStore) Seen(u, i int64) (float64, bool, error) {
	idx, ok := s.UserVector.IndexOn("uid")
	if !ok {
		return 0, false, fmt.Errorf("rec: uservector has no uid index")
	}
	var (
		rating  float64
		found   bool
		scanErr error
	)
	idx.ScanIndex(types.NewInt(u), types.NewInt(u), func(rid storage.RID) bool {
		row, err := s.UserVector.Heap.Get(rid)
		if err != nil {
			scanErr = err
			return false
		}
		if row[1].Int() == i {
			rating, found = row[2].Float(), true
			return false
		}
		return true
	})
	return rating, found, scanErr
}

// PredictForUser estimates RecScore(u, i) for a whole batch of items,
// fetching the per-user state (rated items, neighbor list, or factor
// vector) once instead of once per pair the way repeated Predict calls
// would. The storage layer's page latches make concurrent PredictForUser
// calls for different users safe, which is what parallel cache
// materialization relies on.
func (s *ModelStore) PredictForUser(u int64, items []int64) ([]float64, []bool, error) {
	scores := make([]float64, len(items))
	oks := make([]bool, len(items))
	switch {
	case s.Algo.ItemBased():
		userItems, err := s.UserItems(u)
		if err != nil {
			return nil, nil, err
		}
		for x, i := range items {
			neighbors, err := s.ItemNeighbors(i)
			if err != nil {
				return nil, nil, err
			}
			scores[x], oks[x] = PredictWeighted(neighbors, userItems)
		}
	case s.Algo.UserBased():
		neighbors, err := s.UserNeighbors(u)
		if err != nil {
			return nil, nil, err
		}
		for x, i := range items {
			raters, err := s.ItemRaters(i)
			if err != nil {
				return nil, nil, err
			}
			scores[x], oks[x] = PredictWeighted(neighbors, raters)
		}
	case s.Algo == Popularity:
		for x, i := range items {
			score, ok, err := s.ItemScoreOf(i)
			if err != nil {
				return nil, nil, err
			}
			scores[x], oks[x] = score, ok
		}
	default: // SVD
		p, err := s.UserFactors(u)
		if err != nil {
			return nil, nil, err
		}
		for x, i := range items {
			if p == nil {
				break
			}
			q, err := s.ItemFactors(i)
			if err != nil {
				return nil, nil, err
			}
			if q == nil {
				continue
			}
			scores[x], oks[x] = Dot(p, q), true
		}
	}
	return scores, oks, nil
}

// Predict estimates RecScore(u, i) from the materialized tables, following
// the per-algorithm operators of §IV-A. ok is false when the model has no
// basis for a prediction.
func (s *ModelStore) Predict(u, i int64) (float64, bool, error) {
	switch {
	case s.Algo.ItemBased():
		userItems, err := s.UserItems(u)
		if err != nil {
			return 0, false, err
		}
		neighbors, err := s.ItemNeighbors(i)
		if err != nil {
			return 0, false, err
		}
		score, ok := PredictWeighted(neighbors, userItems)
		return score, ok, nil
	case s.Algo.UserBased():
		raters, err := s.ItemRaters(i)
		if err != nil {
			return 0, false, err
		}
		neighbors, err := s.UserNeighbors(u)
		if err != nil {
			return 0, false, err
		}
		score, ok := PredictWeighted(neighbors, raters)
		return score, ok, nil
	case s.Algo == Popularity:
		return s.ItemScoreOf(i)
	default: // SVD
		p, err := s.UserFactors(u)
		if err != nil {
			return 0, false, err
		}
		q, err := s.ItemFactors(i)
		if err != nil {
			return 0, false, err
		}
		if p == nil || q == nil {
			return 0, false, nil
		}
		return Dot(p, q), true, nil
	}
}
