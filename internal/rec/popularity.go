package rec

import "sort"

// PopularityModel is the non-personalized model (§II class 1): it scores
// every item by its damped mean rating,
//
//	score(i) = (Σ ratings(i) + K × globalMean) / (count(i) + K)
//
// where the damping constant K pulls sparsely rated items toward the
// global mean, the standard "true Bayesian estimate" used by e.g. IMDb's
// Top-250 chart. The same score is returned for every user.
type PopularityModel struct {
	ix         *ratingsIndex
	scores     map[int64]float64
	globalMean float64
}

// PopularityDamping is K in the damped-mean formula.
const PopularityDamping = 5.0

// BuildPopularity computes the damped mean score for every item.
func BuildPopularity(ratings []Rating) *PopularityModel {
	ix := indexRatings(ratings)
	var sum float64
	for _, byItem := range ix.byUser {
		for _, v := range byItem {
			sum += v
		}
	}
	m := &PopularityModel{ix: ix, scores: make(map[int64]float64, len(ix.items))}
	if ix.n > 0 {
		m.globalMean = sum / float64(ix.n)
	}
	for _, i := range ix.items {
		var itemSum float64
		raters := ix.byItem[i]
		for _, v := range raters {
			itemSum += v
		}
		m.scores[i] = (itemSum + PopularityDamping*m.globalMean) /
			(float64(len(raters)) + PopularityDamping)
	}
	return m
}

// Algorithm implements Model.
func (m *PopularityModel) Algorithm() Algorithm { return Popularity }

// NumRatings implements Model.
func (m *PopularityModel) NumRatings() int { return m.ix.n }

// Users implements Model.
func (m *PopularityModel) Users() []int64 { return m.ix.users }

// Items implements Model.
func (m *PopularityModel) Items() []int64 { return m.ix.items }

// Seen implements Model.
func (m *PopularityModel) Seen(user, item int64) (float64, bool) { return m.ix.seen(user, item) }

// Ratings implements Model.
func (m *PopularityModel) Ratings() []Rating { return m.ix.allRatings() }

// Predict implements Model: the item's damped mean, independent of user.
// Unknown users still get predictions (the cold-start property), unknown
// items do not.
func (m *PopularityModel) Predict(user, item int64) (float64, bool) {
	s, ok := m.scores[item]
	return s, ok
}

// GlobalMean returns the mean of all training ratings.
func (m *PopularityModel) GlobalMean() float64 { return m.globalMean }

// Score returns the damped mean for one item.
func (m *PopularityModel) Score(item int64) (float64, bool) {
	s, ok := m.scores[item]
	return s, ok
}

// Ranking returns all items sorted by descending score (ties by id).
func (m *PopularityModel) Ranking() []int64 {
	out := append([]int64(nil), m.ix.items...)
	sort.Slice(out, func(a, b int) bool {
		sa, sb := m.scores[out[a]], m.scores[out[b]]
		if sa != sb {
			return sa > sb
		}
		return out[a] < out[b]
	})
	return out
}
