package rec

import (
	"math"
	"testing"
)

func TestBuildPopularityScores(t *testing.T) {
	m := BuildPopularity(paperRatings())
	// Global mean = (1.5+3.5+4.5+2+1+2+1)/7 = 15.5/7.
	wantMean := 15.5 / 7
	if math.Abs(m.GlobalMean()-wantMean) > 1e-12 {
		t.Fatalf("global mean %v, want %v", m.GlobalMean(), wantMean)
	}
	// Item 1: ratings 1.5, 4.5, 2 → (8 + 5·mean)/(3+5).
	want1 := (8 + PopularityDamping*wantMean) / (3 + PopularityDamping)
	got1, ok := m.Score(1)
	if !ok || math.Abs(got1-want1) > 1e-12 {
		t.Fatalf("score(1) = %v, want %v", got1, want1)
	}
	// Item 3 has a single rating of 2 and is pulled toward the mean.
	got3, _ := m.Score(3)
	want3 := (2 + PopularityDamping*wantMean) / (1 + PopularityDamping)
	if math.Abs(got3-want3) > 1e-12 {
		t.Fatalf("score(3) = %v, want %v", got3, want3)
	}
	if _, ok := m.Score(99); ok {
		t.Fatal("unknown item should have no score")
	}
}

func TestPopularityPredictIsUserIndependent(t *testing.T) {
	m := BuildPopularity(paperRatings())
	p1, ok1 := m.Predict(1, 2)
	p2, ok2 := m.Predict(3, 2)
	pCold, okCold := m.Predict(999, 2) // unknown user: cold-start works
	if !ok1 || !ok2 || !okCold || p1 != p2 || p1 != pCold {
		t.Fatalf("predictions differ across users: %v %v %v", p1, p2, pCold)
	}
	if _, ok := m.Predict(1, 99); ok {
		t.Fatal("unknown item should not predict")
	}
}

func TestPopularityRanking(t *testing.T) {
	m := BuildPopularity(paperRatings())
	ranking := m.Ranking()
	if len(ranking) != 3 {
		t.Fatalf("ranking: %v", ranking)
	}
	for i := 1; i < len(ranking); i++ {
		a, _ := m.Score(ranking[i-1])
		b, _ := m.Score(ranking[i])
		if a < b {
			t.Fatalf("ranking not descending: %v", ranking)
		}
	}
}

func TestPopularityModelInterface(t *testing.T) {
	m, err := Build(paperRatings(), Popularity, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Algorithm() != Popularity || m.NumRatings() != 7 {
		t.Fatalf("model: %v %d", m.Algorithm(), m.NumRatings())
	}
	if v, ok := m.Seen(2, 1); !ok || v != 4.5 {
		t.Fatalf("Seen: %v %v", v, ok)
	}
}

func TestPopularityMaterializeAndPredict(t *testing.T) {
	cat, _ := newCatalogWithRatings(t, paperRatings())
	model := BuildPopularity(paperRatings())
	store, err := Materialize(cat, "pop", model)
	if err != nil {
		t.Fatal(err)
	}
	if !cat.Has("_rec_pop_itemscore") {
		t.Fatal("itemscore table missing")
	}
	for _, i := range model.Items() {
		want, _ := model.Score(i)
		got, ok, err := store.Predict(1, i)
		if err != nil || !ok || math.Abs(got-want) > 1e-12 {
			t.Fatalf("store predict(%d): %v %v %v, want %v", i, got, ok, err, want)
		}
	}
	if _, ok, err := store.Predict(1, 99); err != nil || ok {
		t.Fatalf("unknown item: %v %v", ok, err)
	}
	DropTables(cat, "pop")
	if cat.Has("_rec_pop_itemscore") {
		t.Fatal("drop left itemscore behind")
	}
}

func TestPopularityEmptyRatings(t *testing.T) {
	m := BuildPopularity(nil)
	if m.GlobalMean() != 0 || m.NumRatings() != 0 {
		t.Fatalf("empty model: %v %d", m.GlobalMean(), m.NumRatings())
	}
	if _, ok := m.Predict(1, 1); ok {
		t.Fatal("empty model should not predict")
	}
}
