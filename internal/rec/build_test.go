package rec

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParseAlgorithm(t *testing.T) {
	cases := map[string]Algorithm{
		"ItemCosCF": ItemCosCF, "itempearcf": ItemPearCF,
		"USERCOSCF": UserCosCF, "UserPearCF": UserPearCF,
		"svd": SVD, "": DefaultAlgorithm,
	}
	for name, want := range cases {
		got, err := ParseAlgorithm(name)
		if err != nil || got != want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseAlgorithm("DeepLearning"); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

func TestAlgorithmPredicates(t *testing.T) {
	if !ItemCosCF.ItemBased() || !ItemPearCF.ItemBased() || UserCosCF.ItemBased() || SVD.ItemBased() {
		t.Error("ItemBased classification wrong")
	}
	if !UserCosCF.UserBased() || !UserPearCF.UserBased() || ItemCosCF.UserBased() {
		t.Error("UserBased classification wrong")
	}
	if !ItemPearCF.Pearson() || !UserPearCF.Pearson() || ItemCosCF.Pearson() {
		t.Error("Pearson classification wrong")
	}
	for _, a := range []Algorithm{ItemCosCF, ItemPearCF, UserCosCF, UserPearCF, SVD} {
		if a.String() == "" || a.String()[0] == 'A' {
			t.Errorf("String() for %d: %q", int(a), a.String())
		}
	}
}

// paperRatings is Figure 1(c) from the paper.
func paperRatings() []Rating {
	return []Rating{
		{1, 1, 1.5},
		{2, 2, 3.5}, {2, 1, 4.5}, {2, 3, 2},
		{3, 2, 1}, {3, 1, 2},
		{4, 2, 1},
	}
}

func TestItemCosineSimilarityHandComputed(t *testing.T) {
	m, err := BuildNeighborhood(paperRatings(), ItemCosCF, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Item vectors in user space: i1 = (1.5, 4.5, 2, 0), i2 = (0, 3.5, 1, 1),
	// i3 = (0, 2, 0, 0).
	// sim(1,2) = (4.5*3.5 + 2*1) / (||i1|| * ||i2||).
	dot12 := 4.5*3.5 + 2.0*1.0
	n1 := math.Sqrt(1.5*1.5 + 4.5*4.5 + 2*2)
	n2 := math.Sqrt(3.5*3.5 + 1 + 1)
	want12 := dot12 / (n1 * n2)
	got := simOf(t, m, 1, 2)
	if math.Abs(got-want12) > 1e-12 {
		t.Errorf("sim(1,2) = %v, want %v", got, want12)
	}
	// sim(1,3): co-rated by user 2 only: 4.5*2 / (||i1||*||i3||).
	want13 := 4.5 * 2 / (n1 * 2)
	if got := simOf(t, m, 1, 3); math.Abs(got-want13) > 1e-12 {
		t.Errorf("sim(1,3) = %v, want %v", got, want13)
	}
	// Symmetry.
	if simOf(t, m, 2, 1) != simOf(t, m, 1, 2) {
		t.Error("similarity should be symmetric")
	}
}

func simOf(t *testing.T, m *NeighborhoodModel, a, b int64) float64 {
	t.Helper()
	for _, n := range m.Neighbors(a) {
		if n.ID == b {
			return n.Sim
		}
	}
	t.Fatalf("no neighbor %d of %d", b, a)
	return 0
}

func TestItemCFPredictEquation2(t *testing.T) {
	m, _ := BuildNeighborhood(paperRatings(), ItemCosCF, BuildOptions{})
	// Predict item 3 for user 3 (rated items 1 and 2).
	// RecScore = (sim(3,1)*r31 + sim(3,2)*r32) / (|sim(3,1)| + |sim(3,2)|).
	s31, s32 := simOf(t, m, 3, 1), simOf(t, m, 3, 2)
	want := (s31*2 + s32*1) / (math.Abs(s31) + math.Abs(s32))
	got, ok := m.Predict(3, 3)
	if !ok || math.Abs(got-want) > 1e-12 {
		t.Fatalf("Predict(3,3) = %v, %v; want %v", got, ok, want)
	}
}

func TestPredictNoOverlap(t *testing.T) {
	// User 5 has rated nothing: no prediction basis.
	m, _ := BuildNeighborhood(paperRatings(), ItemCosCF, BuildOptions{})
	if _, ok := m.Predict(5, 1); ok {
		t.Error("prediction for unknown user should fail")
	}
	// Disjoint items: two users rating disjoint item sets.
	m2, _ := BuildNeighborhood([]Rating{{1, 1, 5}, {2, 2, 3}}, ItemCosCF, BuildOptions{})
	if _, ok := m2.Predict(1, 2); ok {
		t.Error("prediction with empty neighborhood intersection should fail")
	}
}

func TestSeenAndAccessors(t *testing.T) {
	m, _ := BuildNeighborhood(paperRatings(), ItemCosCF, BuildOptions{})
	if v, ok := m.Seen(2, 1); !ok || v != 4.5 {
		t.Errorf("Seen(2,1) = %v, %v", v, ok)
	}
	if _, ok := m.Seen(1, 3); ok {
		t.Error("Seen(1,3) should be false")
	}
	if got := m.Users(); len(got) != 4 || got[0] != 1 || got[3] != 4 {
		t.Errorf("Users: %v", got)
	}
	if got := m.Items(); len(got) != 3 {
		t.Errorf("Items: %v", got)
	}
	if m.NumRatings() != 7 {
		t.Errorf("NumRatings = %d", m.NumRatings())
	}
	if m.Algorithm() != ItemCosCF {
		t.Errorf("Algorithm = %v", m.Algorithm())
	}
	rs := m.Ratings()
	if len(rs) != 7 || rs[0] != (Rating{1, 1, 1.5}) {
		t.Errorf("Ratings: %v", rs)
	}
}

func TestPearsonCentersVectors(t *testing.T) {
	// Two items with identical rating *patterns* shifted by a constant have
	// Pearson similarity 1 but cosine < 1 only in non-centered terms; with
	// ratings perfectly linearly related, centered cosine = 1.
	ratings := []Rating{
		{1, 1, 1}, {2, 1, 2}, {3, 1, 3},
		{1, 2, 3}, {2, 2, 4}, {3, 2, 5},
	}
	m, _ := BuildNeighborhood(ratings, ItemPearCF, BuildOptions{})
	if got := simOf(t, m, 1, 2); math.Abs(got-1) > 1e-9 {
		t.Errorf("Pearson sim of linearly related items = %v, want 1", got)
	}
}

func TestUserBasedModel(t *testing.T) {
	m, err := BuildNeighborhood(paperRatings(), UserCosCF, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Users 2 and 3 co-rated items 1 and 2.
	// u2 = (4.5, 3.5, 2), u3 = (2, 1, 0) over items (1,2,3).
	dot := 4.5*2 + 3.5*1
	n2 := math.Sqrt(4.5*4.5 + 3.5*3.5 + 4)
	n3 := math.Sqrt(5)
	want := dot / (n2 * n3)
	if got := simOf(t, m, 2, 3); math.Abs(got-want) > 1e-12 {
		t.Errorf("user sim(2,3) = %v, want %v", got, want)
	}
	// Predict item 3 for user 3: neighbors of 3 who rated item 3 = {2}.
	s23 := simOf(t, m, 3, 2)
	wantPred := (s23 * 2) / math.Abs(s23)
	got, ok := m.Predict(3, 3)
	if !ok || math.Abs(got-wantPred) > 1e-12 {
		t.Errorf("UserCF Predict(3,3) = %v, %v; want %v", got, ok, wantPred)
	}
}

func TestNeighborhoodTruncation(t *testing.T) {
	ratings := paperRatings()
	full, _ := BuildNeighborhood(ratings, ItemCosCF, BuildOptions{})
	trunc, _ := BuildNeighborhood(ratings, ItemCosCF, BuildOptions{NeighborhoodSize: 1})
	if len(full.Neighbors(1)) < 2 {
		t.Skip("need at least 2 neighbors for this test")
	}
	if len(trunc.Neighbors(1)) != 1 {
		t.Fatalf("truncated list has %d entries", len(trunc.Neighbors(1)))
	}
	// Truncation keeps the highest-|sim| neighbor.
	if trunc.Neighbors(1)[0].ID != full.Neighbors(1)[0].ID {
		t.Error("truncation should keep the top neighbor")
	}
}

func TestBuildRejectsWrongAlgorithm(t *testing.T) {
	if _, err := BuildNeighborhood(paperRatings(), SVD, BuildOptions{}); err == nil {
		t.Error("BuildNeighborhood(SVD) should fail")
	}
}

func TestSVDLearnsRatings(t *testing.T) {
	// A rank-1 rating matrix should be learnable to low error.
	var ratings []Rating
	userW := []float64{1, 2, 3, 4}
	itemW := []float64{1.2, 0.8, 1.5, 0.5, 1.0}
	for u := range userW {
		for i := range itemW {
			if (u+i)%3 == 0 {
				continue // hold out some entries
			}
			ratings = append(ratings, Rating{int64(u + 1), int64(i + 1), userW[u] * itemW[i]})
		}
	}
	m, err := TrainSVD(ratings, BuildOptions{SVDFactors: 4, SVDEpochs: 200, SVDRate: 0.02, SVDSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	var se, n float64
	for _, r := range ratings {
		p, ok := m.Predict(r.User, r.Item)
		if !ok {
			t.Fatalf("no prediction for %v", r)
		}
		se += (p - r.Value) * (p - r.Value)
		n++
	}
	rmse := math.Sqrt(se / n)
	if rmse > 0.3 {
		t.Fatalf("training RMSE = %v, want < 0.3", rmse)
	}
	// Held-out entries generalize roughly (rank-1 structure).
	p, ok := m.Predict(1, 1) // held out: (0+0)%3==0
	if !ok {
		t.Fatal("no prediction for held-out pair")
	}
	if math.Abs(p-1.2) > 0.8 {
		t.Errorf("held-out prediction %v too far from 1.2", p)
	}
}

func TestSVDDeterministic(t *testing.T) {
	ratings := paperRatings()
	m1, _ := TrainSVD(ratings, BuildOptions{SVDSeed: 7})
	m2, _ := TrainSVD(ratings, BuildOptions{SVDSeed: 7})
	p1, _ := m1.Predict(1, 2)
	p2, _ := m2.Predict(1, 2)
	if p1 != p2 {
		t.Fatalf("same seed, different predictions: %v vs %v", p1, p2)
	}
}

func TestSVDUnknownIDs(t *testing.T) {
	m, _ := TrainSVD(paperRatings(), BuildOptions{})
	if _, ok := m.Predict(99, 1); ok {
		t.Error("unknown user should not predict")
	}
	if _, ok := m.Predict(1, 99); ok {
		t.Error("unknown item should not predict")
	}
}

func TestBuildDispatch(t *testing.T) {
	for _, algo := range []Algorithm{ItemCosCF, ItemPearCF, UserCosCF, UserPearCF, SVD} {
		m, err := Build(paperRatings(), algo, BuildOptions{})
		if err != nil {
			t.Fatalf("Build(%v): %v", algo, err)
		}
		if m.Algorithm() != algo {
			t.Fatalf("Build(%v) returned %v model", algo, m.Algorithm())
		}
	}
}

func TestPredictWeighted(t *testing.T) {
	neighbors := []Neighbor{{ID: 1, Sim: 0.5}, {ID: 2, Sim: -0.25}, {ID: 3, Sim: 0.8}}
	known := map[int64]float64{1: 4, 2: 2}
	// (0.5*4 + -0.25*2) / (0.5 + 0.25) = 1.5/0.75 = 2.
	got, ok := PredictWeighted(neighbors, known)
	if !ok || math.Abs(got-2) > 1e-12 {
		t.Fatalf("PredictWeighted = %v, %v", got, ok)
	}
	if _, ok := PredictWeighted(neighbors, map[int64]float64{9: 1}); ok {
		t.Error("no intersection should not predict")
	}
	if _, ok := PredictWeighted(nil, known); ok {
		t.Error("empty neighborhood should not predict")
	}
}

func TestSimilarityBoundsProperty(t *testing.T) {
	// Cosine similarity is always in [-1, 1]; predictions stay within the
	// range of the user's own ratings for item-based CF.
	f := func(seed int64) bool {
		rng := newDeterministicRand(seed)
		var ratings []Rating
		for u := int64(1); u <= 8; u++ {
			for i := int64(1); i <= 12; i++ {
				if rng.next()%3 == 0 {
					ratings = append(ratings, Rating{u, i, float64(1 + rng.next()%5)})
				}
			}
		}
		m, err := BuildNeighborhood(ratings, ItemCosCF, BuildOptions{})
		if err != nil {
			return false
		}
		for _, i := range m.Items() {
			for _, n := range m.Neighbors(i) {
				if n.Sim < -1-1e-9 || n.Sim > 1+1e-9 {
					return false
				}
			}
		}
		for _, u := range m.Users() {
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, i := range m.Items() {
				if v, ok := m.Seen(u, i); ok {
					lo, hi = math.Min(lo, v), math.Max(hi, v)
				}
			}
			for _, i := range m.Items() {
				if p, ok := m.Predict(u, i); ok {
					// Weighted average with non-negative weights stays in
					// [lo, hi]; negative sims can exceed slightly, so allow
					// the full rating span as a sanity envelope.
					if p < lo-4 || p > hi+4 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// deterministicRand is a tiny LCG for property tests.
type deterministicRand struct{ state uint64 }

func newDeterministicRand(seed int64) *deterministicRand {
	return &deterministicRand{state: uint64(seed)*2862933555777941757 + 3037000493}
}

func (r *deterministicRand) next() int64 {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return int64(r.state >> 33)
}
