package rec

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"recdb/internal/catalog"
	"recdb/internal/metrics"
	"recdb/internal/types"
)

// Metrics is the set of optional instruments the manager records into.
// Every field may be nil (the zero Metrics disables instrumentation);
// nil instruments are no-ops per the internal/metrics contract.
type Metrics struct {
	// Builds counts successful model (re)builds, including the initial
	// CREATE RECOMMENDER build.
	Builds *metrics.Counter
	// BuildFailures counts failed rebuilds (the previous model kept
	// serving).
	BuildFailures *metrics.Counter
	// BuildNanos records model build wall time (build + materialize).
	BuildNanos *metrics.Histogram
	// HealthTransitions counts healthy->degraded and degraded->healthy
	// flips across all recommenders.
	HealthTransitions *metrics.Counter
}

// Options configures the manager.
type Options struct {
	// Build tunes model construction for every recommender.
	Build BuildOptions
	// RebuildThresholdPct is N from §III-A: the model is rebuilt when the
	// number of new ratings reaches N% of the ratings used for the current
	// model. Default 10.
	RebuildThresholdPct float64
	// Metrics receives build/maintenance instrumentation; the zero value
	// records nothing.
	Metrics Metrics
}

func (o Options) withDefaults() Options {
	if o.RebuildThresholdPct <= 0 {
		o.RebuildThresholdPct = 10
	}
	return o
}

// Recommender is one created recommender: its definition, its materialized
// model store, and its maintenance state.
type Recommender struct {
	Name      string
	Table     string
	UserCol   string
	ItemCol   string
	RatingCol string
	Algo      Algorithm
	// Workers is this recommender's build parallelism (CREATE RECOMMENDER
	// ... WITH WORKERS n). 0 defers to the manager-wide
	// Options.Build.Workers.
	Workers int

	mu         sync.RWMutex
	store      *ModelStore
	buildCount int           // ratings used for the current model
	pending    int           // new ratings since the current model was built
	buildTime  time.Duration // duration of the last model build (Table II)
	rebuilds   int

	// Degradation state: a failed rebuild leaves the previous model
	// serving and is retried with exponential backoff.
	failures  int       // consecutive failed rebuilds
	lastErr   error     // most recent rebuild failure (nil when healthy)
	lastErrAt time.Time // when lastErr happened
	nextRetry time.Time // earliest time maintenance may retry
}

// Health is a point-in-time snapshot of a recommender's maintenance
// state. A degraded recommender keeps answering queries from the last
// good model; Healthy reports whether the most recent (re)build
// succeeded.
type Health struct {
	Name     string
	Healthy  bool
	Rebuilds int
	Pending  int
	// Failures counts consecutive failed rebuilds (0 when healthy).
	Failures int
	// LastError is the most recent rebuild failure, nil when healthy.
	LastError error
	// LastErrorAt and NextRetry frame the backoff window: maintenance
	// will not retry the rebuild before NextRetry.
	LastErrorAt time.Time
	NextRetry   time.Time
}

// Health reports the recommender's current maintenance health.
func (r *Recommender) Health() Health {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return Health{
		Name:        r.Name,
		Healthy:     r.lastErr == nil,
		Rebuilds:    r.rebuilds,
		Pending:     r.pending,
		Failures:    r.failures,
		LastError:   r.lastErr,
		LastErrorAt: r.lastErrAt,
		NextRetry:   r.nextRetry,
	}
}

// Store returns the current materialized model. The returned store remains
// readable even if a rebuild swaps in a replacement concurrently.
func (r *Recommender) Store() *ModelStore {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.store
}

// BuildTime returns the duration of the most recent model build.
func (r *Recommender) BuildTime() time.Duration {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.buildTime
}

// Pending returns the count of ratings inserted since the last build.
func (r *Recommender) Pending() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.pending
}

// Rebuilds returns how many times maintenance has rebuilt the model.
func (r *Recommender) Rebuilds() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.rebuilds
}

// Manager owns every recommender created with CREATE RECOMMENDER: it
// builds models, materializes them into the catalog, resolves RECOMMEND
// clauses to recommenders, and applies the N% maintenance policy on
// ratings-table inserts.
type Manager struct {
	cat  *catalog.Catalog
	opts Options

	mu   sync.RWMutex
	recs map[string]*Recommender // keyed by lower-case name

	// onRebuild, when set, is invoked after a model rebuild so dependent
	// structures (the RecScoreIndex cache) can invalidate.
	onRebuild func(*Recommender)

	// now is the clock used for the rebuild-failure backoff (tests swap it).
	now func() time.Time
	// buildFault, when set, fails every model build (fault-injection tests).
	buildFault func() error
}

// Rebuild-failure backoff: 500ms doubling to a 60s ceiling.
const (
	backoffBase = 500 * time.Millisecond
	backoffMax  = 60 * time.Second
)

// backoffAfter returns the retry delay after the Nth consecutive failure.
func backoffAfter(failures int) time.Duration {
	d := backoffBase
	for i := 1; i < failures && d < backoffMax; i++ {
		d *= 2
	}
	if d > backoffMax {
		d = backoffMax
	}
	return d
}

// NewManager creates a manager over the catalog.
func NewManager(cat *catalog.Catalog, opts Options) *Manager {
	return &Manager{
		cat:  cat,
		opts: opts.withDefaults(),
		recs: make(map[string]*Recommender),
		now:  time.Now,
	}
}

// OnRebuild registers a callback fired after maintenance rebuilds a model.
func (m *Manager) OnRebuild(fn func(*Recommender)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onRebuild = fn
}

// CreateSpec is the full definition accepted by CreateFromSpec, carrying
// the per-recommender build options of CREATE RECOMMENDER.
type CreateSpec struct {
	Name      string
	Table     string
	UserCol   string
	ItemCol   string
	RatingCol string
	Algorithm string
	// Workers overrides Options.Build.Workers for this recommender's
	// builds (including maintenance rebuilds); 0 keeps the manager-wide
	// default.
	Workers int
}

// Create implements CREATE RECOMMENDER: it loads the ratings table, builds
// the model for the algorithm, and materializes it (Recommender
// Initialization, §III-A).
func (m *Manager) Create(name, table, userCol, itemCol, ratingCol, algoName string) (*Recommender, error) {
	return m.CreateFromSpec(CreateSpec{
		Name: name, Table: table,
		UserCol: userCol, ItemCol: itemCol, RatingCol: ratingCol,
		Algorithm: algoName,
	})
}

// CreateFromSpec is Create with the full option set.
func (m *Manager) CreateFromSpec(spec CreateSpec) (*Recommender, error) {
	algo, err := ParseAlgorithm(spec.Algorithm)
	if err != nil {
		return nil, err
	}
	key := strings.ToLower(spec.Name)
	m.mu.Lock()
	if _, exists := m.recs[key]; exists {
		m.mu.Unlock()
		return nil, fmt.Errorf("rec: recommender %q already exists", spec.Name)
	}
	m.mu.Unlock()

	ratings, err := m.loadRatings(spec.Table, spec.UserCol, spec.ItemCol, spec.RatingCol)
	if err != nil {
		return nil, err
	}
	r := &Recommender{
		Name: spec.Name, Table: spec.Table,
		UserCol: spec.UserCol, ItemCol: spec.ItemCol, RatingCol: spec.RatingCol,
		Algo: algo, Workers: spec.Workers,
	}
	if err := m.buildAndSwap(r, ratings); err != nil {
		return nil, err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if _, exists := m.recs[key]; exists {
		DropTables(m.cat, spec.Name)
		return nil, fmt.Errorf("rec: recommender %q already exists", spec.Name)
	}
	m.recs[key] = r
	return r, nil
}

func (m *Manager) buildAndSwap(r *Recommender, ratings []Rating) error {
	start := time.Now()
	opts := m.opts.Build
	if r.Workers != 0 {
		opts.Workers = r.Workers
	}
	model, err := Build(ratings, r.Algo, opts)
	if err != nil {
		return err
	}
	store, err := Materialize(m.cat, r.Name, model)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	m.opts.Metrics.Builds.Inc()
	m.opts.Metrics.BuildNanos.Observe(int64(elapsed))
	r.mu.Lock()
	r.store = store
	r.buildCount = model.NumRatings()
	r.pending = 0
	r.buildTime = elapsed
	r.mu.Unlock()
	return nil
}

// loadRatings scans the source table, projecting the three named columns.
func (m *Manager) loadRatings(table, userCol, itemCol, ratingCol string) ([]Rating, error) {
	t, err := m.cat.Get(table)
	if err != nil {
		return nil, err
	}
	uIdx, err := t.Schema.Resolve("", userCol)
	if err != nil {
		return nil, fmt.Errorf("rec: users column: %w", err)
	}
	iIdx, err := t.Schema.Resolve("", itemCol)
	if err != nil {
		return nil, fmt.Errorf("rec: items column: %w", err)
	}
	rIdx, err := t.Schema.Resolve("", ratingCol)
	if err != nil {
		return nil, fmt.Errorf("rec: ratings column: %w", err)
	}
	var out []Rating
	it := t.Heap.Scan()
	defer it.Close()
	for {
		row, _, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		u, uok := row[uIdx].AsInt()
		i, iok := row[iIdx].AsInt()
		v, vok := row[rIdx].AsFloat()
		if !uok || !iok || !vok {
			continue // skip rows with NULL or non-numeric keys
		}
		out = append(out, Rating{User: u, Item: i, Value: v})
	}
}

// Drop implements DROP RECOMMENDER.
func (m *Manager) Drop(name string) error {
	key := strings.ToLower(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, exists := m.recs[key]; !exists {
		return fmt.Errorf("rec: recommender %q does not exist", name)
	}
	delete(m.recs, key)
	DropTables(m.cat, name)
	return nil
}

// Get returns the recommender with the given name.
func (m *Manager) Get(name string) (*Recommender, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	r, ok := m.recs[strings.ToLower(name)]
	return r, ok
}

// List returns all recommenders, unordered.
func (m *Manager) List() []*Recommender {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*Recommender, 0, len(m.recs))
	for _, r := range m.recs {
		out = append(out, r)
	}
	return out
}

// ForQuery resolves a RECOMMEND clause to a created recommender: the
// clause names the ratings table in FROM and the algorithm in USING, and
// the engine "figures that a recommender is already created" (§IV-A1). An
// empty algorithm selects the default.
func (m *Manager) ForQuery(table, algoName string) (*Recommender, error) {
	algo, err := ParseAlgorithm(algoName)
	if err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, r := range m.recs {
		if strings.EqualFold(r.Table, table) && r.Algo == algo {
			return r, nil
		}
	}
	return nil, fmt.Errorf("rec: no %v recommender exists on table %q; run CREATE RECOMMENDER first", algo, table)
}

// NotifyInsert implements the maintenance policy of §III-A: each new
// rating inserted into a recommender's source table counts toward its
// pending updates; when pending reaches N%% of the ratings used to build
// the current model, the model is rebuilt from the table.
func (m *Manager) NotifyInsert(table string, count int) error {
	m.mu.RLock()
	var due []*Recommender
	for _, r := range m.recs {
		if !strings.EqualFold(r.Table, table) {
			continue
		}
		now := m.now()
		r.mu.Lock()
		r.pending += count
		threshold := int(m.opts.RebuildThresholdPct / 100 * float64(r.buildCount))
		if threshold < 1 {
			threshold = 1
		}
		// A recommender in its backoff window stays pending: the insert
		// proceeds, the previous model keeps serving, and a later insert
		// (or explicit Rebuild) retries once the window passes.
		if r.pending >= threshold && !now.Before(r.nextRetry) {
			due = append(due, r)
		}
		r.mu.Unlock()
	}
	m.mu.RUnlock()

	for _, r := range due {
		// Rebuild fires the onRebuild cache invalidation itself on
		// success. Graceful degradation on error: the failure is recorded
		// in the recommender's Health and retried with backoff; the
		// insert that triggered maintenance must not fail.
		_ = m.Rebuild(r.Name)
	}
	return nil
}

// Rebuild reloads the source table and rebuilds the recommender's model.
// On failure the previous model keeps serving: the error is recorded in
// the recommender's Health and maintenance backs off exponentially
// (500ms doubling, 60s cap) before retrying.
func (m *Manager) Rebuild(name string) error {
	r, ok := m.Get(name)
	if !ok {
		return fmt.Errorf("rec: recommender %q does not exist", name)
	}
	err := m.rebuild(r)
	now := m.now()
	r.mu.Lock()
	wasHealthy := r.lastErr == nil
	if err != nil {
		r.failures++
		r.lastErr = err
		r.lastErrAt = now
		r.nextRetry = now.Add(backoffAfter(r.failures))
	} else {
		r.rebuilds++
		r.failures = 0
		r.lastErr = nil
		r.lastErrAt = time.Time{}
		r.nextRetry = time.Time{}
	}
	nowHealthy := r.lastErr == nil
	r.mu.Unlock()
	if err != nil {
		m.opts.Metrics.BuildFailures.Inc()
	}
	if wasHealthy != nowHealthy {
		m.opts.Metrics.HealthTransitions.Inc()
	}
	if err == nil {
		// Every successful rebuild — maintenance-driven or explicit — must
		// advance dependent caches to the new model generation; a stale
		// RecScoreIndex would keep serving the pre-swap scores.
		m.mu.RLock()
		onRebuild := m.onRebuild
		m.mu.RUnlock()
		if onRebuild != nil {
			onRebuild(r)
		}
	}
	return err
}

func (m *Manager) rebuild(r *Recommender) error {
	if m.buildFault != nil {
		if err := m.buildFault(); err != nil {
			return err
		}
	}
	ratings, err := m.loadRatings(r.Table, r.UserCol, r.ItemCol, r.RatingCol)
	if err != nil {
		return err
	}
	return m.buildAndSwap(r, ratings)
}

// HealthAll reports the health of every recommender, sorted by name.
func (m *Manager) HealthAll() []Health {
	recs := m.List()
	out := make([]Health, 0, len(recs))
	for _, r := range recs {
		out = append(out, r.Health())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RatingsOf loads the current contents of a recommender's source table as
// rating triples (used by the OnTopDB baseline and the cache manager).
func (m *Manager) RatingsOf(r *Recommender) ([]Rating, error) {
	return m.loadRatings(r.Table, r.UserCol, r.ItemCol, r.RatingCol)
}

// ResolveRatingColumns maps a recommender's (user, item, rating) column
// names to positions in the source table's schema.
func (r *Recommender) ResolveRatingColumns(schema *types.Schema) (u, i, v int, err error) {
	if u, err = schema.Resolve("", r.UserCol); err != nil {
		return
	}
	if i, err = schema.Resolve("", r.ItemCol); err != nil {
		return
	}
	v, err = schema.Resolve("", r.RatingCol)
	return
}
