// Package rec implements the paper's core contribution: the recommendation
// models RecDB builds and maintains inside the database engine. It provides
//
//   - the five supported algorithms (§III-A): item-item and user-user
//     collaborative filtering with cosine or Pearson similarity, and
//     regularized-gradient-descent matrix factorization (SVD);
//   - in-memory model building (Step I of §II) shared by the in-DBMS
//     operators and the OnTopDB baseline;
//   - recommendation-score prediction (Step II, Equation 2);
//   - the model store, which materializes a built model into catalog heap
//     tables (ItemNeighborhood, UserNeighborhood, UserVector, ItemVector,
//     UserFactor, ItemFactor) that the RECOMMEND operators scan block by
//     block (Algorithms 1-2);
//   - the recommender manager behind CREATE/DROP RECOMMENDER, including
//     the N% staleness-threshold maintenance policy (§III-A).
package rec

import (
	"fmt"
	"strings"
)

// Algorithm identifies a recommendation algorithm.
type Algorithm int

// The supported algorithms. DefaultAlgorithm (ItemCosCF) is used when a
// CREATE RECOMMENDER or RECOMMEND clause omits USING, per §III-A.
const (
	ItemCosCF Algorithm = iota
	ItemPearCF
	UserCosCF
	UserPearCF
	SVD
	// Popularity is the non-personalized class of §II: every user gets the
	// same scores, the damped mean rating of each item. It is an extension
	// beyond the paper's three families, useful as a cold-start fallback.
	Popularity
)

// DefaultAlgorithm is ItemCosCF, the paper's default.
const DefaultAlgorithm = ItemCosCF

// String returns the paper's abbreviation for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case ItemCosCF:
		return "ItemCosCF"
	case ItemPearCF:
		return "ItemPearCF"
	case UserCosCF:
		return "UserCosCF"
	case UserPearCF:
		return "UserPearCF"
	case SVD:
		return "SVD"
	case Popularity:
		return "Popularity"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm resolves an algorithm name (case-insensitive). The empty
// string resolves to DefaultAlgorithm.
func ParseAlgorithm(name string) (Algorithm, error) {
	switch strings.ToLower(name) {
	case "":
		return DefaultAlgorithm, nil
	case "itemcoscf":
		return ItemCosCF, nil
	case "itempearcf":
		return ItemPearCF, nil
	case "usercoscf":
		return UserCosCF, nil
	case "userpearcf":
		return UserPearCF, nil
	case "svd":
		return SVD, nil
	case "popularity":
		return Popularity, nil
	default:
		return 0, fmt.Errorf("rec: unknown recommendation algorithm %q", name)
	}
}

// ItemBased reports whether the algorithm's model is an item neighborhood.
func (a Algorithm) ItemBased() bool { return a == ItemCosCF || a == ItemPearCF }

// UserBased reports whether the algorithm's model is a user neighborhood.
func (a Algorithm) UserBased() bool { return a == UserCosCF || a == UserPearCF }

// Pearson reports whether the algorithm uses Pearson correlation.
func (a Algorithm) Pearson() bool { return a == ItemPearCF || a == UserPearCF }

// Rating is one (user, item, value) preference triple, the row shape of the
// ratings table named in CREATE RECOMMENDER.
type Rating struct {
	User, Item int64
	Value      float64
}
