package rec

import (
	"testing"

	"recdb/internal/types"
)

func TestManagerCreateGetDrop(t *testing.T) {
	cat, _ := newCatalogWithRatings(t, paperRatings())
	m := NewManager(cat, Options{})
	r, err := m.Create("GeneralRec", "ratings", "uid", "iid", "ratingval", "ItemCosCF")
	if err != nil {
		t.Fatal(err)
	}
	if r.Algo != ItemCosCF || r.Store() == nil {
		t.Fatalf("recommender: %+v", r)
	}
	if r.BuildTime() <= 0 {
		t.Error("build time should be recorded")
	}
	if _, err := m.Create("generalrec", "ratings", "uid", "iid", "ratingval", ""); err == nil {
		t.Fatal("case-insensitive duplicate name should fail")
	}
	got, ok := m.Get("GENERALREC")
	if !ok || got != r {
		t.Fatal("Get should find the recommender case-insensitively")
	}
	if len(m.List()) != 1 {
		t.Fatal("List should have one entry")
	}
	if err := m.Drop("GeneralRec"); err != nil {
		t.Fatal(err)
	}
	if cat.Has("_rec_generalrec_uservector") {
		t.Fatal("drop should remove model tables")
	}
	if err := m.Drop("GeneralRec"); err == nil {
		t.Fatal("double drop should fail")
	}
}

func TestManagerCreateErrors(t *testing.T) {
	cat, _ := newCatalogWithRatings(t, paperRatings())
	m := NewManager(cat, Options{})
	if _, err := m.Create("r", "nope", "uid", "iid", "ratingval", ""); err == nil {
		t.Error("missing table should fail")
	}
	if _, err := m.Create("r", "ratings", "nope", "iid", "ratingval", ""); err == nil {
		t.Error("missing user column should fail")
	}
	if _, err := m.Create("r", "ratings", "uid", "iid", "ratingval", "Quantum"); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

func TestManagerForQuery(t *testing.T) {
	cat, _ := newCatalogWithRatings(t, paperRatings())
	m := NewManager(cat, Options{})
	m.Create("a", "ratings", "uid", "iid", "ratingval", "ItemCosCF")
	m.Create("b", "ratings", "uid", "iid", "ratingval", "SVD")

	r, err := m.ForQuery("Ratings", "svd")
	if err != nil || r.Name != "b" {
		t.Fatalf("ForQuery(svd): %v %v", r, err)
	}
	// Empty algorithm resolves to the default (ItemCosCF).
	r, err = m.ForQuery("ratings", "")
	if err != nil || r.Name != "a" {
		t.Fatalf("ForQuery(default): %v %v", r, err)
	}
	if _, err := m.ForQuery("ratings", "UserCosCF"); err == nil {
		t.Fatal("missing recommender should fail with a helpful error")
	}
	if _, err := m.ForQuery("other", "ItemCosCF"); err == nil {
		t.Fatal("wrong table should fail")
	}
}

func TestMaintenanceThreshold(t *testing.T) {
	cat, tab := newCatalogWithRatings(t, paperRatings())
	m := NewManager(cat, Options{RebuildThresholdPct: 50}) // rebuild at 50% of 7 ratings ≈ 3
	r, err := m.Create("r", "ratings", "uid", "iid", "ratingval", "ItemCosCF")
	if err != nil {
		t.Fatal(err)
	}
	rebuilt := 0
	m.OnRebuild(func(rr *Recommender) {
		if rr != r {
			t.Error("wrong recommender in rebuild callback")
		}
		rebuilt++
	})

	insert := func(u, i int64, v float64) {
		t.Helper()
		if _, err := tab.Insert(types.Row{types.NewInt(u), types.NewInt(i), types.NewFloat(v)}); err != nil {
			t.Fatal(err)
		}
		if err := m.NotifyInsert("ratings", 1); err != nil {
			t.Fatal(err)
		}
	}
	insert(1, 2, 3) // pending 1 < 3
	insert(1, 3, 4) // pending 2 < 3
	if r.Rebuilds() != 0 || rebuilt != 0 {
		t.Fatalf("premature rebuild: %d", r.Rebuilds())
	}
	insert(4, 1, 2) // pending 3 ≥ 3 → rebuild
	if r.Rebuilds() != 1 || rebuilt != 1 {
		t.Fatalf("rebuilds = %d, callback = %d", r.Rebuilds(), rebuilt)
	}
	if r.Pending() != 0 {
		t.Fatalf("pending after rebuild = %d", r.Pending())
	}
	// The rebuilt model includes the new ratings.
	if _, found, err := r.Store().Seen(1, 2); err != nil || !found {
		t.Fatalf("rebuilt model missing new rating: %v %v", found, err)
	}
	// Inserts to unrelated tables are ignored.
	if err := m.NotifyInsert("unrelated", 100); err != nil {
		t.Fatal(err)
	}
	if r.Pending() != 0 {
		t.Fatal("unrelated inserts should not count")
	}
}

func TestManualRebuild(t *testing.T) {
	cat, tab := newCatalogWithRatings(t, paperRatings())
	m := NewManager(cat, Options{})
	r, _ := m.Create("r", "ratings", "uid", "iid", "ratingval", "")
	tab.Insert(types.Row{types.NewInt(9), types.NewInt(1), types.NewFloat(5)})
	if err := m.Rebuild("r"); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := r.Store().Seen(9, 1); !found {
		t.Fatal("manual rebuild should pick up new ratings")
	}
	if err := m.Rebuild("missing"); err == nil {
		t.Fatal("rebuild of missing recommender should fail")
	}
}

func TestRatingsOfAndResolve(t *testing.T) {
	cat, _ := newCatalogWithRatings(t, paperRatings())
	m := NewManager(cat, Options{})
	r, _ := m.Create("r", "ratings", "uid", "iid", "ratingval", "")
	got, err := m.RatingsOf(r)
	if err != nil || len(got) != 7 {
		t.Fatalf("RatingsOf: %d, %v", len(got), err)
	}
	tab, _ := cat.Get("ratings")
	u, i, v, err := r.ResolveRatingColumns(tab.Schema)
	if err != nil || u != 0 || i != 1 || v != 2 {
		t.Fatalf("ResolveRatingColumns: %d %d %d %v", u, i, v, err)
	}
}

func TestLoadRatingsSkipsNulls(t *testing.T) {
	cat, tab := newCatalogWithRatings(t, paperRatings())
	tab.Insert(types.Row{types.Null(), types.NewInt(1), types.NewFloat(5)})
	m := NewManager(cat, Options{})
	r, err := m.Create("r", "ratings", "uid", "iid", "ratingval", "")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := m.RatingsOf(r); len(got) != 7 {
		t.Fatalf("null row should be skipped, got %d ratings", len(got))
	}
}
