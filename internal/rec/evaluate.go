package rec

import "math"

// Evaluation summarizes prediction accuracy over a held-out rating set,
// the standard offline metrics (RMSE/MAE) of the recommender-systems
// literature the paper builds on. The paper itself scopes accuracy out
// ("RECDB does not introduce a novel recommendation model with higher
// accuracy"); this utility exists so users can sanity-check a recommender
// and compare algorithm configurations.
type Evaluation struct {
	// RMSE is the root mean squared error over scorable pairs.
	RMSE float64
	// MAE is the mean absolute error over scorable pairs.
	MAE float64
	// Scorable counts test ratings the model could predict.
	Scorable int
	// Unscorable counts test ratings with no prediction basis (cold
	// users/items or empty neighborhoods).
	Unscorable int
}

// Evaluate scores model against test ratings. Pairs the model cannot
// predict are counted in Unscorable and excluded from the error metrics.
func Evaluate(model Model, test []Rating) Evaluation {
	var ev Evaluation
	var se, ae float64
	for _, r := range test {
		p, ok := model.Predict(r.User, r.Item)
		if !ok {
			ev.Unscorable++
			continue
		}
		d := p - r.Value
		se += d * d
		ae += math.Abs(d)
		ev.Scorable++
	}
	if ev.Scorable > 0 {
		ev.RMSE = math.Sqrt(se / float64(ev.Scorable))
		ev.MAE = ae / float64(ev.Scorable)
	}
	return ev
}

// SplitRatings partitions ratings into train/test deterministically: every
// k-th rating (by position) is held out. k < 2 holds out nothing.
func SplitRatings(ratings []Rating, k int) (train, test []Rating) {
	if k < 2 {
		return ratings, nil
	}
	train = make([]Rating, 0, len(ratings))
	test = make([]Rating, 0, len(ratings)/k+1)
	for i, r := range ratings {
		if i%k == k-1 {
			test = append(test, r)
		} else {
			train = append(train, r)
		}
	}
	return train, test
}
