package rec

import (
	"errors"
	"testing"
	"time"

	"recdb/internal/types"
)

// TestRebuildFailureKeepsPreviousModel exercises graceful degradation:
// while rebuilds fail, the recommender keeps serving the last good model,
// inserts keep succeeding, health reports the failure, and maintenance
// retries with exponential backoff.
func TestRebuildFailureKeepsPreviousModel(t *testing.T) {
	cat, tab := newCatalogWithRatings(t, paperRatings())
	m := NewManager(cat, Options{})
	now := time.Unix(1000, 0)
	m.now = func() time.Time { return now }

	r, err := m.Create("Rec", "ratings", "uid", "iid", "ratingval", "ItemCosCF")
	if err != nil {
		t.Fatal(err)
	}
	if h := r.Health(); !h.Healthy || h.Failures != 0 {
		t.Fatalf("fresh health = %+v", h)
	}
	goodStore := r.Store()
	pred := func() float64 {
		v, ok, err := goodStore.Predict(1, 3)
		if err != nil || !ok {
			t.Fatalf("predict: %v, %v", ok, err)
		}
		return v
	}
	before := pred()

	// Arm the fault and flood inserts past the rebuild threshold.
	buildErr := errors.New("injected build failure")
	m.buildFault = func() error { return buildErr }
	insert := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, err := tab.Insert(types.Row{types.NewInt(99), types.NewInt(int64(100 + i)), types.NewFloat(3)}); err != nil {
				t.Fatal(err)
			}
		}
		// The insert path must not fail even though the rebuild does.
		if err := m.NotifyInsert("ratings", n); err != nil {
			t.Fatalf("NotifyInsert during degraded rebuild: %v", err)
		}
	}
	insert(10)

	h := r.Health()
	if h.Healthy || h.Failures != 1 || !errors.Is(h.LastError, buildErr) {
		t.Fatalf("degraded health = %+v", h)
	}
	if want := now.Add(500 * time.Millisecond); !h.NextRetry.Equal(want) {
		t.Fatalf("first backoff NextRetry = %v, want %v", h.NextRetry, want)
	}
	// The previous model still serves, unchanged.
	if r.Store() != goodStore {
		t.Fatal("failed rebuild swapped the model store")
	}
	if got := pred(); got != before {
		t.Fatalf("prediction drifted while degraded: %v != %v", got, before)
	}

	// Within the backoff window maintenance must NOT retry.
	now = now.Add(100 * time.Millisecond)
	insert(1)
	if h = r.Health(); h.Failures != 1 {
		t.Fatalf("retried inside backoff window: %+v", h)
	}

	// Past the window it retries, fails again, and the window doubles.
	now = now.Add(500 * time.Millisecond)
	insert(1)
	h = r.Health()
	if h.Failures != 2 {
		t.Fatalf("no retry after backoff: %+v", h)
	}
	if want := now.Add(1 * time.Second); !h.NextRetry.Equal(want) {
		t.Fatalf("second backoff NextRetry = %v, want %v", h.NextRetry, want)
	}

	// Clear the fault: the next eligible retry succeeds, health recovers,
	// and the rebuilt model includes the new ratings.
	m.buildFault = nil
	now = now.Add(2 * time.Second)
	insert(1)
	h = r.Health()
	if !h.Healthy || h.Failures != 0 || h.LastError != nil || h.Pending != 0 {
		t.Fatalf("health after recovery = %+v", h)
	}
	if r.Store() == goodStore {
		t.Fatal("recovered rebuild did not swap in a new model")
	}
	if h.Rebuilds != 1 {
		t.Fatalf("rebuilds = %d, want 1", h.Rebuilds)
	}
}

func TestBackoffCapsAtMax(t *testing.T) {
	if d := backoffAfter(1); d != 500*time.Millisecond {
		t.Fatalf("backoff(1) = %v", d)
	}
	if d := backoffAfter(4); d != 4*time.Second {
		t.Fatalf("backoff(4) = %v", d)
	}
	if d := backoffAfter(50); d != 60*time.Second {
		t.Fatalf("backoff(50) = %v, want cap", d)
	}
}

func TestExplicitRebuildReturnsAndRecordsError(t *testing.T) {
	cat, _ := newCatalogWithRatings(t, paperRatings())
	m := NewManager(cat, Options{})
	r, err := m.Create("Rec", "ratings", "uid", "iid", "ratingval", "ItemCosCF")
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	m.buildFault = func() error { return boom }
	// Explicit Rebuild surfaces the error to its caller AND records it.
	if err := m.Rebuild("Rec"); !errors.Is(err, boom) {
		t.Fatalf("Rebuild err = %v", err)
	}
	if h := r.Health(); h.Healthy || !errors.Is(h.LastError, boom) {
		t.Fatalf("health = %+v", h)
	}
	if got := m.HealthAll(); len(got) != 1 || got[0].Name != "Rec" {
		t.Fatalf("HealthAll = %+v", got)
	}
}
