package rec

import "testing"

func benchRatings(users, items int, density float64) []Rating {
	rng := newDeterministicRand(99)
	var out []Rating
	mod := int64(1 / density)
	if mod < 1 {
		mod = 1
	}
	for u := int64(1); u <= int64(users); u++ {
		for i := int64(1); i <= int64(items); i++ {
			if rng.next()%mod == 0 {
				out = append(out, Rating{u, i, float64(1 + rng.next()%5)})
			}
		}
	}
	return out
}

func BenchmarkBuildItemCosCF(b *testing.B) {
	ratings := benchRatings(200, 400, 0.06)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildNeighborhood(ratings, ItemCosCF, BuildOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainSVD(b *testing.B) {
	ratings := benchRatings(200, 400, 0.06)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainSVD(ratings, BuildOptions{SVDSeed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredictItemCF(b *testing.B) {
	ratings := benchRatings(200, 400, 0.06)
	m, err := BuildNeighborhood(ratings, ItemCosCF, BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	users := m.Users()
	items := m.Items()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(users[i%len(users)], items[i%len(items)])
	}
}
