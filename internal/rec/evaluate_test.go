package rec

import (
	"math"
	"testing"
)

// perfectModel predicts exactly 3.0 for every known pair.
type perfectModel struct{ known map[[2]int64]bool }

func (m perfectModel) Algorithm() Algorithm { return ItemCosCF }
func (m perfectModel) Predict(u, i int64) (float64, bool) {
	if m.known[[2]int64{u, i}] {
		return 3.0, true
	}
	return 0, false
}
func (m perfectModel) Seen(u, i int64) (float64, bool) { return 0, false }
func (m perfectModel) Users() []int64                  { return nil }
func (m perfectModel) Items() []int64                  { return nil }
func (m perfectModel) NumRatings() int                 { return 0 }
func (m perfectModel) Ratings() []Rating               { return nil }

func TestEvaluateMetrics(t *testing.T) {
	m := perfectModel{known: map[[2]int64]bool{
		{1, 1}: true, {1, 2}: true, {2, 1}: true,
	}}
	test := []Rating{
		{1, 1, 3.0}, // error 0
		{1, 2, 5.0}, // error 2
		{2, 1, 2.0}, // error 1
		{9, 9, 4.0}, // unscorable
	}
	ev := Evaluate(m, test)
	if ev.Scorable != 3 || ev.Unscorable != 1 {
		t.Fatalf("counts: %+v", ev)
	}
	wantRMSE := math.Sqrt((0 + 4 + 1) / 3.0)
	if math.Abs(ev.RMSE-wantRMSE) > 1e-12 {
		t.Fatalf("RMSE = %v, want %v", ev.RMSE, wantRMSE)
	}
	if math.Abs(ev.MAE-1.0) > 1e-12 {
		t.Fatalf("MAE = %v, want 1", ev.MAE)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	ev := Evaluate(perfectModel{}, nil)
	if ev.RMSE != 0 || ev.Scorable != 0 {
		t.Fatalf("%+v", ev)
	}
}

func TestSplitRatings(t *testing.T) {
	ratings := make([]Rating, 10)
	for i := range ratings {
		ratings[i] = Rating{User: int64(i), Item: 1, Value: 1}
	}
	train, test := SplitRatings(ratings, 5)
	if len(train) != 8 || len(test) != 2 {
		t.Fatalf("split sizes: %d/%d", len(train), len(test))
	}
	if test[0].User != 4 || test[1].User != 9 {
		t.Fatalf("held out: %+v", test)
	}
	train, test = SplitRatings(ratings, 0)
	if len(train) != 10 || test != nil {
		t.Fatalf("k<2 split: %d/%d", len(train), len(test))
	}
}

func TestEvaluateRealAlgorithmsOrdering(t *testing.T) {
	// On latent-structured data, ItemCosCF should comfortably beat a model
	// that always predicts the global mean... at minimum, all algorithms
	// should produce finite errors within the rating scale.
	var ratings []Rating
	rng := newDeterministicRand(11)
	for u := int64(1); u <= 30; u++ {
		for i := int64(1); i <= 40; i++ {
			if rng.next()%3 != 0 {
				continue
			}
			base := 1 + (u+i)%5
			ratings = append(ratings, Rating{u, i, float64(base)})
		}
	}
	train, test := SplitRatings(ratings, 4)
	for _, algo := range []Algorithm{ItemCosCF, ItemPearCF, UserCosCF, UserPearCF, SVD, Popularity} {
		m, err := Build(train, algo, BuildOptions{SVDSeed: 2, SVDEpochs: 60})
		if err != nil {
			t.Fatal(err)
		}
		ev := Evaluate(m, test)
		if ev.Scorable == 0 {
			t.Fatalf("%v: nothing scorable", algo)
		}
		if math.IsNaN(ev.RMSE) || ev.RMSE > 5 {
			t.Fatalf("%v: RMSE %v out of range", algo, ev.RMSE)
		}
		if ev.MAE > ev.RMSE+1e-9 {
			t.Fatalf("%v: MAE %v exceeds RMSE %v", algo, ev.MAE, ev.RMSE)
		}
	}
}
