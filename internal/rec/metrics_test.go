package rec

import (
	"errors"
	"testing"
	"time"

	"recdb/internal/metrics"
	"recdb/internal/types"
)

// TestBuildMetricsDeterministic drives the rebuild/backoff state machine
// with a fake clock and pins the exact instrument values at every step:
// builds, build failures, and healthy<->degraded transitions are counted
// once per event, never per retry-while-backing-off.
func TestBuildMetricsDeterministic(t *testing.T) {
	cat, tab := newCatalogWithRatings(t, paperRatings())
	reg := metrics.NewRegistry()
	m := NewManager(cat, Options{Metrics: Metrics{
		Builds:            reg.Counter("rec.builds"),
		BuildFailures:     reg.Counter("rec.build_failures"),
		BuildNanos:        reg.Histogram("rec.build_ns"),
		HealthTransitions: reg.Counter("rec.health_transitions"),
	}})
	now := time.Unix(1000, 0)
	m.now = func() time.Time { return now }

	want := func(step string, builds, failures, transitions int64) {
		t.Helper()
		s := reg.Snapshot()
		for name, v := range map[string]int64{
			"rec.builds":             builds,
			"rec.build_failures":     failures,
			"rec.health_transitions": transitions,
		} {
			if got, _ := s.Get(name); got != v {
				t.Fatalf("%s: %s = %d, want %d", step, name, got, v)
			}
		}
		var observed int64 = -1
		for _, h := range s.Histograms {
			if h.Name == "rec.build_ns" {
				observed = h.Count
			}
		}
		if observed != builds {
			t.Fatalf("%s: rec.build_ns count = %d, want %d", step, observed, builds)
		}
	}

	r, err := m.Create("Rec", "ratings", "uid", "iid", "ratingval", "ItemCosCF")
	if err != nil {
		t.Fatal(err)
	}
	want("after create", 1, 0, 0)

	insert := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, err := tab.Insert(types.Row{types.NewInt(99), types.NewInt(int64(500 + i)), types.NewFloat(3)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.NotifyInsert("ratings", n); err != nil {
			t.Fatal(err)
		}
	}

	// Arm the fault: the next rebuild fails and flips health.
	buildErr := errors.New("injected build failure")
	m.buildFault = func() error { return buildErr }
	insert(10)
	if h := r.Health(); h.Healthy {
		t.Fatalf("health after failed rebuild = %+v", h)
	}
	want("after first failure", 1, 1, 1)

	// Inside the backoff window nothing retries, so nothing is counted.
	now = now.Add(100 * time.Millisecond)
	insert(10)
	want("inside backoff", 1, 1, 1)

	// Past the window a retry fails again: one more failure, but health
	// was already degraded — no new transition.
	now = now.Add(500 * time.Millisecond)
	insert(10)
	want("second failure", 1, 2, 1)

	// Clear the fault; the next retry succeeds: one more build, and the
	// degraded->healthy flip is the second transition.
	m.buildFault = nil
	now = now.Add(2 * time.Second)
	insert(10)
	if h := r.Health(); !h.Healthy {
		t.Fatalf("health after recovery = %+v", h)
	}
	want("after recovery", 2, 2, 2)
}
