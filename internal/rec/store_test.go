package rec

import (
	"math"
	"testing"

	"recdb/internal/catalog"
	"recdb/internal/types"
)

func newCatalogWithRatings(t *testing.T, ratings []Rating) (*catalog.Catalog, *catalog.Table) {
	t.Helper()
	cat := catalog.New(nil, 0)
	tab, err := cat.CreateTable("ratings", types.NewSchema(
		types.Column{Name: "uid", Kind: types.KindInt},
		types.Column{Name: "iid", Kind: types.KindInt},
		types.Column{Name: "ratingval", Kind: types.KindFloat},
	), -1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ratings {
		if _, err := tab.Insert(types.Row{types.NewInt(r.User), types.NewInt(r.Item), types.NewFloat(r.Value)}); err != nil {
			t.Fatal(err)
		}
	}
	return cat, tab
}

func TestMaterializeItemCF(t *testing.T) {
	cat, _ := newCatalogWithRatings(t, paperRatings())
	model, _ := BuildNeighborhood(paperRatings(), ItemCosCF, BuildOptions{})
	store, err := Materialize(cat, "GeneralRec", model)
	if err != nil {
		t.Fatal(err)
	}
	if !cat.Has("_rec_generalrec_uservector") || !cat.Has("_rec_generalrec_itemneighborhood") {
		t.Fatal("model tables missing from catalog")
	}
	// Store predictions match the in-memory model for every pair.
	for _, u := range model.Users() {
		for _, i := range model.Items() {
			want, wantOK := model.Predict(u, i)
			got, gotOK, err := store.Predict(u, i)
			if err != nil {
				t.Fatal(err)
			}
			if gotOK != wantOK || math.Abs(got-want) > 1e-12 {
				t.Fatalf("Predict(%d,%d): store %v,%v model %v,%v", u, i, got, gotOK, want, wantOK)
			}
		}
	}
}

func TestStoreAccessors(t *testing.T) {
	cat, _ := newCatalogWithRatings(t, paperRatings())
	model, _ := BuildNeighborhood(paperRatings(), ItemCosCF, BuildOptions{})
	store, err := Materialize(cat, "r", model)
	if err != nil {
		t.Fatal(err)
	}
	items, err := store.UserItems(2)
	if err != nil || len(items) != 3 || items[1] != 4.5 {
		t.Fatalf("UserItems(2) = %v, %v", items, err)
	}
	neigh, err := store.ItemNeighbors(1)
	if err != nil || len(neigh) != len(model.Neighbors(1)) {
		t.Fatalf("ItemNeighbors(1) = %v, %v", neigh, err)
	}
	// Sorted by descending |sim| like the in-memory model.
	for i, n := range model.Neighbors(1) {
		if neigh[i].ID != n.ID || math.Abs(neigh[i].Sim-n.Sim) > 1e-12 {
			t.Fatalf("neighbor %d: store %v model %v", i, neigh[i], n)
		}
	}
	if v, found, err := store.Seen(2, 1); err != nil || !found || v != 4.5 {
		t.Fatalf("Seen(2,1) = %v %v %v", v, found, err)
	}
	if _, found, _ := store.Seen(1, 3); found {
		t.Fatal("Seen(1,3) should be false")
	}
	if got := store.UserIDs(); len(got) != 4 {
		t.Fatalf("UserIDs: %v", got)
	}
	if got := store.ItemIDs(); len(got) != 3 {
		t.Fatalf("ItemIDs: %v", got)
	}
}

func TestMaterializeUserCF(t *testing.T) {
	cat, _ := newCatalogWithRatings(t, paperRatings())
	model, _ := BuildNeighborhood(paperRatings(), UserPearCF, BuildOptions{})
	store, err := Materialize(cat, "urec", model)
	if err != nil {
		t.Fatal(err)
	}
	if !cat.Has("_rec_urec_userneighborhood") || !cat.Has("_rec_urec_itemvector") {
		t.Fatal("user-based model tables missing")
	}
	raters, err := store.ItemRaters(2)
	if err != nil || len(raters) != 3 {
		t.Fatalf("ItemRaters(2) = %v, %v", raters, err)
	}
	for _, u := range model.Users() {
		for _, i := range model.Items() {
			want, wantOK := model.Predict(u, i)
			got, gotOK, err := store.Predict(u, i)
			if err != nil {
				t.Fatal(err)
			}
			if gotOK != wantOK || math.Abs(got-want) > 1e-9 {
				t.Fatalf("UserCF Predict(%d,%d): store %v,%v model %v,%v", u, i, got, gotOK, want, wantOK)
			}
		}
	}
}

func TestMaterializeSVD(t *testing.T) {
	cat, _ := newCatalogWithRatings(t, paperRatings())
	model, _ := TrainSVD(paperRatings(), BuildOptions{SVDSeed: 1})
	store, err := Materialize(cat, "svdrec", model)
	if err != nil {
		t.Fatal(err)
	}
	if !cat.Has("_rec_svdrec_userfactor") || !cat.Has("_rec_svdrec_itemfactor") {
		t.Fatal("factor tables missing")
	}
	if store.K != model.K {
		t.Fatalf("K = %d, want %d", store.K, model.K)
	}
	for _, u := range model.Users() {
		vec, err := store.UserFactors(u)
		if err != nil || len(vec) != model.K {
			t.Fatalf("UserFactors(%d): %v %v", u, vec, err)
		}
		for f := range vec {
			if math.Abs(vec[f]-model.UserFactors[u][f]) > 1e-12 {
				t.Fatalf("factor round-trip mismatch for user %d", u)
			}
		}
	}
	got, ok, err := store.Predict(1, 2)
	want, wantOK := model.Predict(1, 2)
	if err != nil || ok != wantOK || math.Abs(got-want) > 1e-12 {
		t.Fatalf("SVD store predict: %v %v %v", got, ok, err)
	}
	// Unknown ids yield no prediction, no error.
	if _, ok, err := store.Predict(99, 1); err != nil || ok {
		t.Fatalf("unknown user: %v %v", ok, err)
	}
}

func TestMaterializeReplacesAndDrop(t *testing.T) {
	cat, _ := newCatalogWithRatings(t, paperRatings())
	model, _ := BuildNeighborhood(paperRatings(), ItemCosCF, BuildOptions{})
	if _, err := Materialize(cat, "r", model); err != nil {
		t.Fatal(err)
	}
	// Re-materializing must not collide with the old tables.
	if _, err := Materialize(cat, "r", model); err != nil {
		t.Fatalf("re-materialize: %v", err)
	}
	DropTables(cat, "r")
	if cat.Has("_rec_r_uservector") || cat.Has("_rec_r_itemneighborhood") {
		t.Fatal("DropTables left tables behind")
	}
}

func TestVecEncoding(t *testing.T) {
	for _, v := range [][]float64{nil, {}, {1.5}, {-0.25, 3, 1e-9, math.Pi}} {
		got, err := decodeVec(encodeVec(v))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(v) {
			t.Fatalf("round trip %v → %v", v, got)
		}
		for i := range v {
			if got[i] != v[i] {
				t.Fatalf("round trip %v → %v", v, got)
			}
		}
	}
	if _, err := decodeVec("1.5,abc"); err == nil {
		t.Error("bad vector should fail to decode")
	}
}
