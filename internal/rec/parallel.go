package rec

import (
	"runtime"
	"sync"
)

// The parallel kernel layer: model building fans work out over a bounded
// pool of workers sized by BuildOptions.Workers. Every kernel is designed
// so the floating-point result is bit-identical at any worker count — each
// accumulator is owned by exactly one worker and sums its terms in a fixed
// order — so `Workers: 1` (the serial path, which spawns no goroutines)
// and `Workers: N` build the same model.

// resolveWorkers maps the Workers knob to an effective pool size:
// 0 selects runtime.NumCPU(), anything below 1 is clamped to 1.
func resolveWorkers(w int) int {
	if w == 0 {
		w = runtime.NumCPU()
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runWorkers runs fn(w) for every w in [0, workers). With a single worker
// fn runs on the calling goroutine, so the serial path stays goroutine-free.
func runWorkers(workers int, fn func(w int)) {
	if workers <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}

// runChunks splits [0, n) into one contiguous chunk per worker and runs
// fn(lo, hi) on each. Chunk boundaries depend only on n and workers, and
// every index belongs to exactly one chunk, so chunked writes are
// conflict-free.
func runChunks(workers, n int, fn func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	runWorkers(workers, func(w int) {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		if lo < hi {
			fn(lo, hi)
		}
	})
}

// mixSeed derives an independent RNG seed from a base seed and a position
// in the deterministic schedule (epoch, rotation, shard, ...), using
// splitmix64 finalization so nearby schedule positions get uncorrelated
// streams.
func mixSeed(seed int64, parts ...int64) int64 {
	z := uint64(seed)
	for _, p := range parts {
		z += 0x9e3779b97f4a7c15 + uint64(p)
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
	}
	return int64(z)
}
