package rec

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Neighbor is one entry of a similarity list: a neighboring entity (item or
// user) and its similarity score to the list's owner.
type Neighbor struct {
	ID  int64
	Sim float64
}

// BuildOptions tunes model construction.
type BuildOptions struct {
	// NeighborhoodSize truncates each similarity list to the top-N most
	// similar entries; 0 keeps the full list (the paper's default).
	NeighborhoodSize int
	// SVD hyperparameters (used only by the SVD algorithm).
	SVDFactors int     // latent factor count (default 10)
	SVDEpochs  int     // SGD passes over the ratings (default 20)
	SVDRate    float64 // learning rate (default 0.01)
	SVDLambda  float64 // L2 regularization λ from Equation 3 (default 0.05)
	SVDSeed    int64   // deterministic initialization seed
}

func (o BuildOptions) withDefaults() BuildOptions {
	if o.SVDFactors <= 0 {
		o.SVDFactors = 10
	}
	if o.SVDEpochs <= 0 {
		o.SVDEpochs = 20
	}
	if o.SVDRate <= 0 {
		o.SVDRate = 0.01
	}
	if o.SVDLambda <= 0 {
		o.SVDLambda = 0.05
	}
	return o
}

// Model is a built recommendation model: it predicts RecScore(u, i) per
// Step II of §II and knows which (user, item) pairs are already rated.
type Model interface {
	// Algorithm returns the algorithm that built the model.
	Algorithm() Algorithm
	// Predict estimates RecScore(u, i). ok is false when the model has no
	// basis for a prediction (the operators then emit 0, per Algorithm 1).
	Predict(user, item int64) (score float64, ok bool)
	// Seen returns the rating user gave item, if any.
	Seen(user, item int64) (float64, bool)
	// Users returns all user ids known to the model, ascending.
	Users() []int64
	// Items returns all item ids known to the model, ascending.
	Items() []int64
	// NumRatings returns the number of ratings the model was built from.
	NumRatings() int
	// Ratings returns the training ratings sorted by (user, item).
	Ratings() []Rating
}

// ratingsIndex is the shared per-user / per-item view of the input.
type ratingsIndex struct {
	byUser map[int64]map[int64]float64 // user → item → rating
	byItem map[int64]map[int64]float64 // item → user → rating
	users  []int64
	items  []int64
	n      int
}

func indexRatings(ratings []Rating) *ratingsIndex {
	ix := &ratingsIndex{
		byUser: make(map[int64]map[int64]float64),
		byItem: make(map[int64]map[int64]float64),
	}
	for _, r := range ratings {
		u := ix.byUser[r.User]
		if u == nil {
			u = make(map[int64]float64)
			ix.byUser[r.User] = u
		}
		if _, dup := u[r.Item]; !dup {
			ix.n++
		}
		u[r.Item] = r.Value
		it := ix.byItem[r.Item]
		if it == nil {
			it = make(map[int64]float64)
			ix.byItem[r.Item] = it
		}
		it[r.User] = r.Value
	}
	ix.users = sortedKeys(ix.byUser)
	ix.items = sortedKeys(ix.byItem)
	return ix
}

func sortedKeys(m map[int64]map[int64]float64) []int64 {
	out := make([]int64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (ix *ratingsIndex) seen(user, item int64) (float64, bool) {
	v, ok := ix.byUser[user][item]
	return v, ok
}

func (ix *ratingsIndex) allRatings() []Rating {
	out := make([]Rating, 0, ix.n)
	for _, u := range ix.users {
		items := make([]int64, 0, len(ix.byUser[u]))
		for i := range ix.byUser[u] {
			items = append(items, i)
		}
		sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })
		for _, i := range items {
			out = append(out, Rating{User: u, Item: i, Value: ix.byUser[u][i]})
		}
	}
	return out
}

// ---- Neighborhood models (ItemCosCF / ItemPearCF / UserCosCF / UserPearCF) ----

// NeighborhoodModel is a similarity-list model: item-item or user-user.
type NeighborhoodModel struct {
	algo Algorithm
	ix   *ratingsIndex
	// neighbors maps the entity id (item for item-based, user for
	// user-based) to its similarity list, sorted by descending |sim|.
	neighbors map[int64][]Neighbor
}

// BuildNeighborhood computes the similarity lists for a neighborhood
// algorithm (Step I of §II; Equation 1 for cosine). For Pearson variants
// the vectors are mean-centered per entity before the cosine, the classic
// adjusted formulation.
func BuildNeighborhood(ratings []Rating, algo Algorithm, opts BuildOptions) (*NeighborhoodModel, error) {
	if !algo.ItemBased() && !algo.UserBased() {
		return nil, fmt.Errorf("rec: %v is not a neighborhood algorithm", algo)
	}
	opts = opts.withDefaults()
	ix := indexRatings(ratings)

	// For item-based models the "entities" are items and the shared
	// dimension is users; user-based swaps the roles. vectors[e] maps
	// dimension → value.
	var vectors map[int64]map[int64]float64
	if algo.ItemBased() {
		vectors = ix.byItem
	} else {
		vectors = ix.byUser
	}

	// Optional mean-centering for Pearson.
	center := map[int64]float64{}
	if algo.Pearson() {
		for e, vec := range vectors {
			var sum float64
			for _, v := range vec {
				sum += v
			}
			center[e] = sum / float64(len(vec))
		}
	}
	val := func(e int64, dim int64) float64 {
		return vectors[e][dim] - center[e]
	}

	// Accumulate pairwise dot products via the shared dimension: for each
	// dimension (user for item-based), every pair of co-rated entities
	// contributes. Norms come per entity.
	norms := make(map[int64]float64, len(vectors))
	for e, vec := range vectors {
		var s float64
		for dim := range vec {
			v := val(e, dim)
			s += v * v
		}
		norms[e] = math.Sqrt(s)
	}
	type pair struct{ a, b int64 }
	dots := make(map[pair]float64)
	var shared map[int64]map[int64]float64
	if algo.ItemBased() {
		shared = ix.byUser // user → items rated
	} else {
		shared = ix.byItem // item → users who rated
	}
	for dim, entities := range shared {
		ids := make([]int64, 0, len(entities))
		for e := range entities {
			ids = append(ids, e)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for x := 0; x < len(ids); x++ {
			vx := val(ids[x], dim)
			for y := x + 1; y < len(ids); y++ {
				dots[pair{ids[x], ids[y]}] += vx * val(ids[y], dim)
			}
		}
	}

	neighbors := make(map[int64][]Neighbor, len(vectors))
	for p, dot := range dots {
		na, nb := norms[p.a], norms[p.b]
		if na == 0 || nb == 0 || dot == 0 {
			continue
		}
		sim := dot / (na * nb)
		neighbors[p.a] = append(neighbors[p.a], Neighbor{ID: p.b, Sim: sim})
		neighbors[p.b] = append(neighbors[p.b], Neighbor{ID: p.a, Sim: sim})
	}
	for e := range neighbors {
		list := neighbors[e]
		sort.Slice(list, func(i, j int) bool {
			ai, aj := math.Abs(list[i].Sim), math.Abs(list[j].Sim)
			if ai != aj {
				return ai > aj
			}
			return list[i].ID < list[j].ID
		})
		if opts.NeighborhoodSize > 0 && len(list) > opts.NeighborhoodSize {
			list = list[:opts.NeighborhoodSize]
		}
		neighbors[e] = list
	}
	return &NeighborhoodModel{algo: algo, ix: ix, neighbors: neighbors}, nil
}

// Algorithm implements Model.
func (m *NeighborhoodModel) Algorithm() Algorithm { return m.algo }

// NumRatings implements Model.
func (m *NeighborhoodModel) NumRatings() int { return m.ix.n }

// Users implements Model.
func (m *NeighborhoodModel) Users() []int64 { return m.ix.users }

// Items implements Model.
func (m *NeighborhoodModel) Items() []int64 { return m.ix.items }

// Seen implements Model.
func (m *NeighborhoodModel) Seen(user, item int64) (float64, bool) { return m.ix.seen(user, item) }

// Ratings implements Model.
func (m *NeighborhoodModel) Ratings() []Rating { return m.ix.allRatings() }

// Neighbors returns the similarity list for an item (item-based) or user
// (user-based), sorted by descending |similarity|.
func (m *NeighborhoodModel) Neighbors(id int64) []Neighbor { return m.neighbors[id] }

// Predict implements Model using Equation 2: the weighted average of the
// user's ratings over the intersection of the candidate's similarity list
// with the user's rated items (item-based), or of the neighbors' ratings
// for the candidate item (user-based).
func (m *NeighborhoodModel) Predict(user, item int64) (float64, bool) {
	if m.algo.ItemBased() {
		return PredictWeighted(m.neighbors[item], m.ix.byUser[user])
	}
	return PredictWeighted(m.neighbors[user], m.ix.byItem[item])
}

// PredictWeighted evaluates Equation 2 given a similarity list and the map
// of known ratings keyed by the same id space as the list. ok is false when
// the intersection is empty (the operators then emit 0).
func PredictWeighted(neighbors []Neighbor, known map[int64]float64) (float64, bool) {
	if len(neighbors) == 0 || len(known) == 0 {
		return 0, false
	}
	var num, den float64
	for _, n := range neighbors {
		if r, ok := known[n.ID]; ok {
			num += n.Sim * r
			den += math.Abs(n.Sim)
		}
	}
	if den == 0 {
		return 0, false
	}
	return num / den, true
}

// ---- Matrix factorization (SVD) ----

// FactorModel is the matrix-factorization model of §IV-A3: one latent
// factor vector per user and per item; prediction is their dot product.
type FactorModel struct {
	ix          *ratingsIndex
	UserFactors map[int64][]float64
	ItemFactors map[int64][]float64
	K           int
}

// TrainSVD learns the factor model by stochastic gradient descent on the
// regularized squared error of Equation 3.
func TrainSVD(ratings []Rating, opts BuildOptions) (*FactorModel, error) {
	opts = opts.withDefaults()
	ix := indexRatings(ratings)
	k := opts.SVDFactors
	rng := rand.New(rand.NewSource(opts.SVDSeed))
	m := &FactorModel{
		ix:          ix,
		UserFactors: make(map[int64][]float64, len(ix.users)),
		ItemFactors: make(map[int64][]float64, len(ix.items)),
		K:           k,
	}
	initVec := func() []float64 {
		v := make([]float64, k)
		for i := range v {
			v[i] = (rng.Float64() - 0.5) * 0.1
		}
		return v
	}
	for _, u := range ix.users {
		m.UserFactors[u] = initVec()
	}
	for _, i := range ix.items {
		m.ItemFactors[i] = initVec()
	}
	// Deterministic training order: ratings sorted by (user, item).
	train := ix.allRatings()
	lr, lam := opts.SVDRate, opts.SVDLambda
	for epoch := 0; epoch < opts.SVDEpochs; epoch++ {
		// Shuffle deterministically per epoch.
		rng.Shuffle(len(train), func(a, b int) { train[a], train[b] = train[b], train[a] })
		for _, r := range train {
			p, q := m.UserFactors[r.User], m.ItemFactors[r.Item]
			pred := Dot(p, q)
			err := r.Value - pred
			for f := 0; f < k; f++ {
				pf, qf := p[f], q[f]
				p[f] += lr * (err*qf - lam*pf)
				q[f] += lr * (err*pf - lam*qf)
			}
		}
	}
	return m, nil
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Algorithm implements Model.
func (m *FactorModel) Algorithm() Algorithm { return SVD }

// NumRatings implements Model.
func (m *FactorModel) NumRatings() int { return m.ix.n }

// Users implements Model.
func (m *FactorModel) Users() []int64 { return m.ix.users }

// Items implements Model.
func (m *FactorModel) Items() []int64 { return m.ix.items }

// Seen implements Model.
func (m *FactorModel) Seen(user, item int64) (float64, bool) { return m.ix.seen(user, item) }

// Ratings implements Model.
func (m *FactorModel) Ratings() []Rating { return m.ix.allRatings() }

// Predict implements Model: the dot product of the user and item factor
// vectors (Algorithm 2).
func (m *FactorModel) Predict(user, item int64) (float64, bool) {
	p, pok := m.UserFactors[user]
	q, qok := m.ItemFactors[item]
	if !pok || !qok {
		return 0, false
	}
	return Dot(p, q), true
}

// Build constructs the model for any supported algorithm.
func Build(ratings []Rating, algo Algorithm, opts BuildOptions) (Model, error) {
	switch algo {
	case SVD:
		return TrainSVD(ratings, opts)
	case Popularity:
		return BuildPopularity(ratings), nil
	default:
		return BuildNeighborhood(ratings, algo, opts)
	}
}
