package rec

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"

	"recdb/internal/ann"
)

// Neighbor is one entry of a similarity list: a neighboring entity (item or
// user) and its similarity score to the list's owner.
type Neighbor struct {
	ID  int64
	Sim float64
}

// BuildOptions tunes model construction.
type BuildOptions struct {
	// NeighborhoodSize truncates each similarity list to the top-N most
	// similar entries; 0 keeps the full list (the paper's default).
	NeighborhoodSize int
	// Workers bounds the worker pool used by the model-build kernels
	// (neighborhood similarity, SVD training, bulk prediction). 0 selects
	// runtime.NumCPU(); 1 is the serial path (no goroutines). Every kernel
	// produces a bit-identical model at any worker count.
	Workers int
	// SVD hyperparameters (used only by the SVD algorithm).
	SVDFactors int     // latent factor count (default 10)
	SVDEpochs  int     // SGD passes over the ratings (default 20)
	SVDRate    float64 // learning rate (default 0.01)
	SVDLambda  float64 // L2 regularization λ from Equation 3 (default 0.05)
	SVDSeed    int64   // deterministic initialization seed
	// SVDHogwild selects the lock-free fast mode for SVD training: workers
	// update shared item factors through atomics without the stratified
	// schedule's rotation barriers (Niu et al., Hogwild!, NIPS 2011).
	// Faster on high-core machines, but the trained factors depend on the
	// goroutine interleaving and are NOT reproducible run to run.
	SVDHogwild bool
	// ANNCentroids and ANNProbe tune the IVF index built over the trained
	// item factors (vector-native top-k). 0 selects the internal/ann
	// defaults (√n centroids, K/4 probe width); the index build shares
	// Workers and is deterministic under SVDSeed for a given factor set.
	ANNCentroids int
	ANNProbe     int
}

func (o BuildOptions) withDefaults() BuildOptions {
	o.Workers = resolveWorkers(o.Workers)
	if o.SVDFactors <= 0 {
		o.SVDFactors = 10
	}
	if o.SVDEpochs <= 0 {
		o.SVDEpochs = 20
	}
	if o.SVDRate <= 0 {
		o.SVDRate = 0.01
	}
	if o.SVDLambda <= 0 {
		o.SVDLambda = 0.05
	}
	return o
}

// Model is a built recommendation model: it predicts RecScore(u, i) per
// Step II of §II and knows which (user, item) pairs are already rated.
type Model interface {
	// Algorithm returns the algorithm that built the model.
	Algorithm() Algorithm
	// Predict estimates RecScore(u, i). ok is false when the model has no
	// basis for a prediction (the operators then emit 0, per Algorithm 1).
	Predict(user, item int64) (score float64, ok bool)
	// Seen returns the rating user gave item, if any.
	Seen(user, item int64) (float64, bool)
	// Users returns all user ids known to the model, ascending.
	Users() []int64
	// Items returns all item ids known to the model, ascending.
	Items() []int64
	// NumRatings returns the number of ratings the model was built from.
	NumRatings() int
	// Ratings returns the training ratings sorted by (user, item).
	Ratings() []Rating
}

// ratingsIndex is the shared per-user / per-item view of the input.
type ratingsIndex struct {
	byUser map[int64]map[int64]float64 // user → item → rating
	byItem map[int64]map[int64]float64 // item → user → rating
	users  []int64
	items  []int64
	n      int
}

func indexRatings(ratings []Rating) *ratingsIndex {
	ix := &ratingsIndex{
		byUser: make(map[int64]map[int64]float64),
		byItem: make(map[int64]map[int64]float64),
	}
	for _, r := range ratings {
		u := ix.byUser[r.User]
		if u == nil {
			u = make(map[int64]float64)
			ix.byUser[r.User] = u
		}
		if _, dup := u[r.Item]; !dup {
			ix.n++
		}
		u[r.Item] = r.Value
		it := ix.byItem[r.Item]
		if it == nil {
			it = make(map[int64]float64)
			ix.byItem[r.Item] = it
		}
		it[r.User] = r.Value
	}
	ix.users = sortedKeys(ix.byUser)
	ix.items = sortedKeys(ix.byItem)
	return ix
}

func sortedKeys(m map[int64]map[int64]float64) []int64 {
	out := make([]int64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (ix *ratingsIndex) seen(user, item int64) (float64, bool) {
	v, ok := ix.byUser[user][item]
	return v, ok
}

func (ix *ratingsIndex) allRatings() []Rating {
	out := make([]Rating, 0, ix.n)
	for _, u := range ix.users {
		items := make([]int64, 0, len(ix.byUser[u]))
		for i := range ix.byUser[u] {
			items = append(items, i)
		}
		sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })
		for _, i := range items {
			out = append(out, Rating{User: u, Item: i, Value: ix.byUser[u][i]})
		}
	}
	return out
}

// ---- Neighborhood models (ItemCosCF / ItemPearCF / UserCosCF / UserPearCF) ----

// NeighborhoodModel is a similarity-list model: item-item or user-user.
type NeighborhoodModel struct {
	algo Algorithm
	ix   *ratingsIndex
	// neighbors maps the entity id (item for item-based, user for
	// user-based) to its similarity list, sorted by descending |sim|.
	neighbors map[int64][]Neighbor
}

// BuildNeighborhood computes the similarity lists for a neighborhood
// algorithm (Step I of §II; Equation 1 for cosine). For Pearson variants
// the vectors are mean-centered per entity before the cosine, the classic
// adjusted formulation.
//
// The pairwise dot products are accumulated in parallel over
// opts.Workers workers. Each (a, b) accumulator is owned by exactly one
// worker — the one that owns entity a's position — and every worker
// walks the shared dimensions in ascending order, so the float sums are
// formed in the same order at any worker count and the model is
// bit-identical whether built serially or in parallel.
func BuildNeighborhood(ratings []Rating, algo Algorithm, opts BuildOptions) (*NeighborhoodModel, error) {
	if !algo.ItemBased() && !algo.UserBased() {
		return nil, fmt.Errorf("rec: %v is not a neighborhood algorithm", algo)
	}
	opts = opts.withDefaults()
	workers := opts.Workers
	ix := indexRatings(ratings)

	// For item-based models the "entities" are items and the shared
	// dimension is users; user-based swaps the roles. vectors[e] maps
	// dimension → value.
	var vectors, shared map[int64]map[int64]float64
	var entities, dims []int64
	if algo.ItemBased() {
		vectors, entities = ix.byItem, ix.items
		shared, dims = ix.byUser, ix.users // user → items rated
	} else {
		vectors, entities = ix.byUser, ix.users
		shared, dims = ix.byItem, ix.items // item → users who rated
	}
	ne := len(entities)
	pos := make(map[int64]int32, ne)
	for p, e := range entities {
		pos[e] = int32(p)
	}

	// Per-entity mean (Pearson only) and vector norm, chunked by entity.
	// Norm terms are summed in ascending dimension order so the value does
	// not depend on map iteration order.
	pearson := algo.Pearson()
	center := make([]float64, ne)
	norms := make([]float64, ne)
	runChunks(workers, ne, func(lo, hi int) {
		var dimbuf []int64
		for pe := lo; pe < hi; pe++ {
			vec := vectors[entities[pe]]
			dimbuf = dimbuf[:0]
			for d := range vec {
				dimbuf = append(dimbuf, d)
			}
			sort.Slice(dimbuf, func(i, j int) bool { return dimbuf[i] < dimbuf[j] })
			if pearson {
				var sum float64
				for _, d := range dimbuf {
					sum += vec[d]
				}
				center[pe] = sum / float64(len(dimbuf))
			}
			var s float64
			c := center[pe]
			for _, d := range dimbuf {
				v := vec[d] - c
				s += v * v
			}
			norms[pe] = math.Sqrt(s)
		}
	})

	// Flatten the shared-dimension view into one CSR-style buffer: for each
	// dimension, the ascending entity positions that co-occur on it and
	// their centered values. One allocation replaces the per-dimension ids
	// slice of the old serial loop.
	nd := len(dims)
	offsets := make([]int, nd+1)
	for pd, d := range dims {
		offsets[pd+1] = offsets[pd] + len(shared[d])
	}
	dimPos := make([]int32, offsets[nd])
	dimVal := make([]float64, offsets[nd])
	runChunks(workers, nd, func(lo, hi int) {
		for pd := lo; pd < hi; pd++ {
			row := shared[dims[pd]]
			seg := dimPos[offsets[pd]:offsets[pd+1]]
			x := 0
			for e := range row {
				seg[x] = pos[e]
				x++
			}
			sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
			vseg := dimVal[offsets[pd]:offsets[pd+1]]
			for x, pe := range seg {
				vseg[x] = row[entities[pe]] - center[pe]
			}
		}
	})

	// Sharded dot-product accumulation: worker w owns every pair whose
	// first (lower) entity position is ≡ w mod workers. The outer scan over
	// dimensions is replicated per worker — O(nnz), cheap — while the
	// quadratic inner loop is partitioned.
	shards := make([]map[uint64]float64, workers)
	runWorkers(workers, func(w int) {
		dots := make(map[uint64]float64)
		for pd := 0; pd < nd; pd++ {
			seg := dimPos[offsets[pd]:offsets[pd+1]]
			vseg := dimVal[offsets[pd]:offsets[pd+1]]
			for x := 0; x < len(seg); x++ {
				if int(seg[x])%workers != w {
					continue
				}
				vx := vseg[x]
				base := uint64(seg[x]) << 32
				for y := x + 1; y < len(seg); y++ {
					dots[base|uint64(seg[y])] += vx * vseg[y]
				}
			}
		}
		shards[w] = dots
	})

	// Merge shards into per-entity lists, then sort and truncate, chunked
	// by entity position. Concurrent chunk workers only read the shard
	// maps and write disjoint list slots. Append order varies with map
	// iteration, but the sort's (|sim| desc, ID asc) key is total, so the
	// final lists are deterministic.
	lists := make([][]Neighbor, ne)
	runChunks(workers, ne, func(lo, hi int) {
		for _, dots := range shards {
			for key, dot := range dots {
				pa, pb := int(key>>32), int(key&0xffffffff)
				aIn := pa >= lo && pa < hi
				bIn := pb >= lo && pb < hi
				if !aIn && !bIn {
					continue
				}
				na, nb := norms[pa], norms[pb]
				if na == 0 || nb == 0 || dot == 0 {
					continue
				}
				sim := dot / (na * nb)
				if aIn {
					lists[pa] = append(lists[pa], Neighbor{ID: entities[pb], Sim: sim})
				}
				if bIn {
					lists[pb] = append(lists[pb], Neighbor{ID: entities[pa], Sim: sim})
				}
			}
		}
		for pe := lo; pe < hi; pe++ {
			list := lists[pe]
			sort.Slice(list, func(i, j int) bool {
				ai, aj := math.Abs(list[i].Sim), math.Abs(list[j].Sim)
				if ai != aj {
					return ai > aj
				}
				return list[i].ID < list[j].ID
			})
			if opts.NeighborhoodSize > 0 && len(list) > opts.NeighborhoodSize {
				list = list[:opts.NeighborhoodSize]
			}
			lists[pe] = list
		}
	})

	neighbors := make(map[int64][]Neighbor, ne)
	for pe, list := range lists {
		if len(list) > 0 {
			neighbors[entities[pe]] = list
		}
	}
	return &NeighborhoodModel{algo: algo, ix: ix, neighbors: neighbors}, nil
}

// Algorithm implements Model.
func (m *NeighborhoodModel) Algorithm() Algorithm { return m.algo }

// NumRatings implements Model.
func (m *NeighborhoodModel) NumRatings() int { return m.ix.n }

// Users implements Model.
func (m *NeighborhoodModel) Users() []int64 { return m.ix.users }

// Items implements Model.
func (m *NeighborhoodModel) Items() []int64 { return m.ix.items }

// Seen implements Model.
func (m *NeighborhoodModel) Seen(user, item int64) (float64, bool) { return m.ix.seen(user, item) }

// Ratings implements Model.
func (m *NeighborhoodModel) Ratings() []Rating { return m.ix.allRatings() }

// Neighbors returns the similarity list for an item (item-based) or user
// (user-based), sorted by descending |similarity|.
func (m *NeighborhoodModel) Neighbors(id int64) []Neighbor { return m.neighbors[id] }

// Predict implements Model using Equation 2: the weighted average of the
// user's ratings over the intersection of the candidate's similarity list
// with the user's rated items (item-based), or of the neighbors' ratings
// for the candidate item (user-based).
func (m *NeighborhoodModel) Predict(user, item int64) (float64, bool) {
	if m.algo.ItemBased() {
		return PredictWeighted(m.neighbors[item], m.ix.byUser[user])
	}
	return PredictWeighted(m.neighbors[user], m.ix.byItem[item])
}

// PredictWeighted evaluates Equation 2 given a similarity list and the map
// of known ratings keyed by the same id space as the list. ok is false when
// the intersection is empty (the operators then emit 0).
func PredictWeighted(neighbors []Neighbor, known map[int64]float64) (float64, bool) {
	if len(neighbors) == 0 || len(known) == 0 {
		return 0, false
	}
	var num, den float64
	for _, n := range neighbors {
		if r, ok := known[n.ID]; ok {
			num += n.Sim * r
			den += math.Abs(n.Sim)
		}
	}
	if den == 0 {
		return 0, false
	}
	return num / den, true
}

// ---- Matrix factorization (SVD) ----

// FactorModel is the matrix-factorization model of §IV-A3: one latent
// factor vector per user and per item; prediction is their dot product.
// IVF is the inverted-file ANN index over the item factors, built after
// training so RECOMMEND top-k can probe instead of scanning every item.
type FactorModel struct {
	ix          *ratingsIndex
	UserFactors map[int64][]float64
	ItemFactors map[int64][]float64
	K           int
	IVF         *ann.Index
}

// TrainSVD learns the factor model by stochastic gradient descent on the
// regularized squared error of Equation 3.
//
// Training uses a stratified parallel schedule (Gemulla et al., KDD 2011):
// users and items are each split into svdStrata strata, and within one
// rotation the worker pool processes blocks that are pairwise disjoint in
// both users and items, so concurrent updates never touch the same factor
// vector. The schedule — block order, per-block visit order, and RNG
// streams — is fixed by SVDSeed alone, so the trained factors are
// bit-identical at any worker count (Workers: 1 runs the same schedule
// serially). Set SVDHogwild for the faster non-reproducible mode.
func TrainSVD(ratings []Rating, opts BuildOptions) (*FactorModel, error) {
	opts = opts.withDefaults()
	ix := indexRatings(ratings)
	k := opts.SVDFactors
	rng := rand.New(rand.NewSource(opts.SVDSeed))
	m := &FactorModel{
		ix:          ix,
		UserFactors: make(map[int64][]float64, len(ix.users)),
		ItemFactors: make(map[int64][]float64, len(ix.items)),
		K:           k,
	}
	initVec := func() []float64 {
		v := make([]float64, k)
		for i := range v {
			v[i] = (rng.Float64() - 0.5) * 0.1
		}
		return v
	}
	for _, u := range ix.users {
		m.UserFactors[u] = initVec()
	}
	for _, i := range ix.items {
		m.ItemFactors[i] = initVec()
	}
	if opts.SVDHogwild && opts.Workers > 1 {
		trainHogwild(m, ix, opts)
	} else {
		trainStratified(m, ix, opts)
	}
	// The IVF index over the trained item factors. The build is a
	// deterministic function of (factors, seed) at any worker count, so the
	// stratified path yields a bit-identical index run to run; Hogwild
	// inherits that mode's documented non-reproducibility through the
	// factors themselves.
	m.IVF = ann.Build(ix.items, m.ItemFactors, ann.Options{
		Centroids: opts.ANNCentroids,
		NProbe:    opts.ANNProbe,
		Workers:   opts.Workers,
		Seed:      opts.SVDSeed,
	})
	return m, nil
}

// svdStrata is the stratification degree S of the DSGD schedule: ratings
// are bucketed into an S×S grid of (user stratum, item stratum) blocks.
const svdStrata = 8

// trainStratified runs the deterministic DSGD schedule: SVDEpochs epochs
// of svdStrata rotations; rotation rot processes the blocks
// (us, (us+rot) mod S) for every user stratum us, which are pairwise
// disjoint in users and items and therefore safe to run concurrently.
// Each block shuffles and applies its ratings under an RNG derived from
// (SVDSeed, epoch, rot, us), so the result does not depend on how blocks
// are assigned to workers.
func trainStratified(m *FactorModel, ix *ratingsIndex, opts BuildOptions) {
	k, lr, lam := m.K, opts.SVDRate, opts.SVDLambda
	userStratum := make(map[int64]int, len(ix.users))
	for p, u := range ix.users {
		userStratum[u] = p % svdStrata
	}
	itemStratum := make(map[int64]int, len(ix.items))
	for p, i := range ix.items {
		itemStratum[i] = p % svdStrata
	}
	blocks := make([][]Rating, svdStrata*svdStrata)
	for _, r := range ix.allRatings() {
		b := userStratum[r.User]*svdStrata + itemStratum[r.Item]
		blocks[b] = append(blocks[b], r)
	}
	workers := opts.Workers
	if workers > svdStrata {
		workers = svdStrata
	}
	for epoch := 0; epoch < opts.SVDEpochs; epoch++ {
		for rot := 0; rot < svdStrata; rot++ {
			runWorkers(workers, func(w int) {
				for us := w; us < svdStrata; us += workers {
					is := (us + rot) % svdStrata
					block := blocks[us*svdStrata+is]
					if len(block) == 0 {
						continue
					}
					rng := rand.New(rand.NewSource(mixSeed(opts.SVDSeed, int64(epoch), int64(rot), int64(us))))
					rng.Shuffle(len(block), func(a, b int) { block[a], block[b] = block[b], block[a] })
					for _, r := range block {
						p, q := m.UserFactors[r.User], m.ItemFactors[r.Item]
						pred := Dot(p, q)
						err := r.Value - pred
						for f := 0; f < k; f++ {
							pf, qf := p[f], q[f]
							p[f] += lr * (err*qf - lam*pf)
							q[f] += lr * (err*pf - lam*qf)
						}
					}
				}
			})
		}
	}
}

// trainHogwild is the documented fast mode: users are partitioned across
// workers (each worker exclusively owns its users' factor vectors) while
// item factors are shared and updated lock-free through atomic loads and
// stores of their bit patterns — the Hogwild! recipe, made race-detector
// clean. Concurrent item updates can lose writes, which SGD tolerates;
// the trade is speed for run-to-run reproducibility.
func trainHogwild(m *FactorModel, ix *ratingsIndex, opts BuildOptions) {
	k, lr, lam := m.K, opts.SVDRate, opts.SVDLambda
	workers := opts.Workers
	qbits := make(map[int64][]uint64, len(ix.items))
	for _, it := range ix.items {
		q := m.ItemFactors[it]
		b := make([]uint64, k)
		for f := range q {
			b[f] = math.Float64bits(q[f])
		}
		qbits[it] = b
	}
	userPart := make(map[int64]int, len(ix.users))
	for p, u := range ix.users {
		userPart[u] = p % workers
	}
	parts := make([][]Rating, workers)
	for _, r := range ix.allRatings() {
		w := userPart[r.User]
		parts[w] = append(parts[w], r)
	}
	for epoch := 0; epoch < opts.SVDEpochs; epoch++ {
		runWorkers(workers, func(w int) {
			part := parts[w]
			rng := rand.New(rand.NewSource(mixSeed(opts.SVDSeed, int64(epoch), int64(w))))
			rng.Shuffle(len(part), func(a, b int) { part[a], part[b] = part[b], part[a] })
			qf := make([]float64, k)
			for _, r := range part {
				p := m.UserFactors[r.User]
				qb := qbits[r.Item]
				for f := 0; f < k; f++ {
					qf[f] = math.Float64frombits(atomic.LoadUint64(&qb[f]))
				}
				pred := Dot(p, qf)
				err := r.Value - pred
				for f := 0; f < k; f++ {
					pf, qv := p[f], qf[f]
					p[f] += lr * (err*qv - lam*pf)
					atomic.StoreUint64(&qb[f], math.Float64bits(qv+lr*(err*pf-lam*qv)))
				}
			}
		})
	}
	for _, it := range ix.items {
		b := qbits[it]
		q := m.ItemFactors[it]
		for f := range q {
			q[f] = math.Float64frombits(b[f])
		}
	}
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Algorithm implements Model.
func (m *FactorModel) Algorithm() Algorithm { return SVD }

// NumRatings implements Model.
func (m *FactorModel) NumRatings() int { return m.ix.n }

// Users implements Model.
func (m *FactorModel) Users() []int64 { return m.ix.users }

// Items implements Model.
func (m *FactorModel) Items() []int64 { return m.ix.items }

// Seen implements Model.
func (m *FactorModel) Seen(user, item int64) (float64, bool) { return m.ix.seen(user, item) }

// Ratings implements Model.
func (m *FactorModel) Ratings() []Rating { return m.ix.allRatings() }

// Predict implements Model: the dot product of the user and item factor
// vectors (Algorithm 2).
func (m *FactorModel) Predict(user, item int64) (float64, bool) {
	p, pok := m.UserFactors[user]
	q, qok := m.ItemFactors[item]
	if !pok || !qok {
		return 0, false
	}
	return Dot(p, q), true
}

// Build constructs the model for any supported algorithm.
func Build(ratings []Rating, algo Algorithm, opts BuildOptions) (Model, error) {
	switch algo {
	case SVD:
		return TrainSVD(ratings, opts)
	case Popularity:
		return BuildPopularity(ratings), nil
	default:
		return BuildNeighborhood(ratings, algo, opts)
	}
}
