package rec

import (
	"fmt"
	"math"
	"testing"
)

// equivalenceRatings is a small but irregular dataset: ragged user
// histories, duplicate values, and a rating count that does not divide
// evenly by any worker count.
func equivalenceRatings() []Rating {
	rng := newDeterministicRand(7)
	var out []Rating
	for u := int64(1); u <= 60; u++ {
		n := 3 + rng.next()%12
		for x := int64(0); x < n; x++ {
			out = append(out, Rating{
				User:  u,
				Item:  1 + rng.next()%80,
				Value: float64(1 + rng.next()%5),
			})
		}
	}
	return out
}

// TestNeighborhoodParallelEquivalence asserts the tentpole guarantee for
// the four neighborhood algorithms: the model built with one worker is
// bit-identical to the model built with four (and with a worker count
// larger than the entity count).
func TestNeighborhoodParallelEquivalence(t *testing.T) {
	ratings := equivalenceRatings()
	for _, algo := range []Algorithm{ItemCosCF, ItemPearCF, UserCosCF, UserPearCF} {
		serial, err := BuildNeighborhood(ratings, algo, BuildOptions{Workers: 1, NeighborhoodSize: 10})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{4, 1000} {
			parallel, err := BuildNeighborhood(ratings, algo, BuildOptions{Workers: workers, NeighborhoodSize: 10})
			if err != nil {
				t.Fatal(err)
			}
			if len(parallel.neighbors) != len(serial.neighbors) {
				t.Fatalf("%v workers=%d: %d entities with neighbors, want %d",
					algo, workers, len(parallel.neighbors), len(serial.neighbors))
			}
			for e, want := range serial.neighbors {
				got := parallel.neighbors[e]
				if len(got) != len(want) {
					t.Fatalf("%v workers=%d entity %d: %d neighbors, want %d", algo, workers, e, len(got), len(want))
				}
				for x := range want {
					if got[x] != want[x] {
						t.Fatalf("%v workers=%d entity %d neighbor %d: got %+v, want %+v",
							algo, workers, e, x, got[x], want[x])
					}
				}
			}
		}
	}
}

// TestSVDParallelEquivalence asserts the stratified SGD schedule trains
// bit-identical factors at any worker count.
func TestSVDParallelEquivalence(t *testing.T) {
	ratings := equivalenceRatings()
	serial, err := TrainSVD(ratings, BuildOptions{Workers: 1, SVDSeed: 42, SVDEpochs: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 32} {
		parallel, err := TrainSVD(ratings, BuildOptions{Workers: workers, SVDSeed: 42, SVDEpochs: 5})
		if err != nil {
			t.Fatal(err)
		}
		for u, want := range serial.UserFactors {
			got := parallel.UserFactors[u]
			for f := range want {
				if got[f] != want[f] {
					t.Fatalf("workers=%d user %d factor %d: got %v, want %v", workers, u, f, got[f], want[f])
				}
			}
		}
		for i, want := range serial.ItemFactors {
			got := parallel.ItemFactors[i]
			for f := range want {
				if got[f] != want[f] {
					t.Fatalf("workers=%d item %d factor %d: got %v, want %v", workers, i, f, got[f], want[f])
				}
			}
		}
	}
}

// TestPredictionParallelEquivalence closes the loop at the Model level for
// all five algorithms: every (user, item) prediction from a Workers: 4
// build equals the Workers: 1 build exactly.
func TestPredictionParallelEquivalence(t *testing.T) {
	ratings := equivalenceRatings()
	for _, algo := range []Algorithm{ItemCosCF, ItemPearCF, UserCosCF, UserPearCF, SVD} {
		serial, err := Build(ratings, algo, BuildOptions{Workers: 1, SVDSeed: 9, SVDEpochs: 4})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := Build(ratings, algo, BuildOptions{Workers: 4, SVDSeed: 9, SVDEpochs: 4})
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range serial.Users() {
			for _, i := range serial.Items() {
				ws, wok := serial.Predict(u, i)
				ps, pok := parallel.Predict(u, i)
				if wok != pok || ws != ps {
					t.Fatalf("%v predict(%d, %d): workers=4 got (%v, %v), workers=1 got (%v, %v)",
						algo, u, i, ps, pok, ws, wok)
				}
			}
		}
	}
}

// TestSVDHogwildLearns checks the documented fast mode still converges on
// learnable structure, without asserting exact factor values (Hogwild is
// nondeterministic by design).
func TestSVDHogwildLearns(t *testing.T) {
	var ratings []Rating
	for u := int64(1); u <= 24; u++ {
		for i := int64(1); i <= 24; i++ {
			if (u+i)%3 == 0 {
				continue
			}
			ratings = append(ratings, Rating{User: u, Item: i, Value: float64((u % 2) * (i % 2) * 4)})
		}
	}
	m, err := TrainSVD(ratings, BuildOptions{
		Workers: 4, SVDHogwild: true,
		SVDSeed: 3, SVDFactors: 4, SVDEpochs: 200, SVDRate: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sse float64
	for _, r := range ratings {
		pred, ok := m.Predict(r.User, r.Item)
		if !ok {
			t.Fatalf("no prediction for (%d, %d)", r.User, r.Item)
		}
		sse += (pred - r.Value) * (pred - r.Value)
	}
	rmse := math.Sqrt(sse / float64(len(ratings)))
	if rmse > 0.5 {
		t.Fatalf("hogwild RMSE on training data = %v, want < 0.5", rmse)
	}
}

func TestResolveWorkers(t *testing.T) {
	if got := resolveWorkers(1); got != 1 {
		t.Fatalf("resolveWorkers(1) = %d", got)
	}
	if got := resolveWorkers(-3); got != 1 {
		t.Fatalf("resolveWorkers(-3) = %d", got)
	}
	if got := resolveWorkers(0); got < 1 {
		t.Fatalf("resolveWorkers(0) = %d", got)
	}
	if got := resolveWorkers(16); got != 16 {
		t.Fatalf("resolveWorkers(16) = %d", got)
	}
}

func TestRunChunksCoversRange(t *testing.T) {
	for _, workers := range []int{1, 3, 8, 100} {
		counts := make([]int32, 37)
		runChunks(workers, len(counts), func(lo, hi int) {
			for x := lo; x < hi; x++ {
				counts[x]++
			}
		})
		for x, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, x, c)
			}
		}
	}
}

// movieLensRatings is the MovieLens-100K-shaped synthetic dataset of the
// scaling experiments: 943 users × 1682 items at ~6.3% density ≈ 100K
// ratings.
func movieLensRatings() []Rating {
	return benchRatings(943, 1682, 0.063)
}

func BenchmarkBuildNeighborhood(b *testing.B) {
	ratings := movieLensRatings()
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := BuildNeighborhood(ratings, ItemCosCF, BuildOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBuildSVD(b *testing.B) {
	ratings := movieLensRatings()
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := TrainSVD(ratings, BuildOptions{Workers: workers, SVDSeed: 1, SVDEpochs: 5}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBuildSVDHogwild(b *testing.B) {
	ratings := movieLensRatings()
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := BuildOptions{Workers: workers, SVDHogwild: true, SVDSeed: 1, SVDEpochs: 5}
				if _, err := TrainSVD(ratings, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
