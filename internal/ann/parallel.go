package ann

import (
	"runtime"
	"sync"
)

// The same bounded-pool discipline as the model-build kernels in
// internal/rec: fn(0) runs on the calling goroutine when workers == 1, so
// the serial path spawns nothing, and chunk boundaries depend only on
// (n, workers), so chunked writes are conflict-free.

// resolveWorkers maps the Workers knob to an effective pool size:
// 0 selects runtime.NumCPU(), anything below 1 is clamped to 1.
func resolveWorkers(w int) int {
	if w == 0 {
		w = runtime.NumCPU()
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runWorkers runs fn(w) for every w in [0, workers).
func runWorkers(workers int, fn func(w int)) {
	if workers <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}

// runChunks splits [0, n) into one contiguous chunk per worker and runs
// fn(w, lo, hi) on each; every index belongs to exactly one chunk.
func runChunks(workers, n int, fn func(w, lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, 0, n)
		}
		return
	}
	runWorkers(workers, func(w int) {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		if lo < hi {
			fn(w, lo, hi)
		}
	})
}

// mixSeed derives an independent RNG seed from a base seed and schedule
// positions via splitmix64 finalization.
func mixSeed(seed int64, parts ...int64) int64 {
	z := uint64(seed)
	for _, p := range parts {
		z += 0x9e3779b97f4a7c15 + uint64(p)
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
	}
	return int64(z)
}
