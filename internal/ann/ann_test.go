package ann

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// synthFactors builds a synthetic latent-factor set the shape SVD training
// produces: n items, dim dimensions, clustered around a few archetypes so
// the IVF structure has something to find.
func synthFactors(n, dim int, seed int64) ([]int64, map[int64][]float64) {
	rng := rand.New(rand.NewSource(seed))
	const archetypes = 6
	centers := make([][]float64, archetypes)
	for a := range centers {
		c := make([]float64, dim)
		for d := range c {
			c[d] = rng.NormFloat64()
		}
		centers[a] = c
	}
	items := make([]int64, n)
	vecs := make(map[int64][]float64, n)
	for i := 0; i < n; i++ {
		id := int64(i + 1)
		items[i] = id
		c := centers[rng.Intn(archetypes)]
		v := make([]float64, dim)
		for d := range v {
			v[d] = c[d] + 0.3*rng.NormFloat64()
		}
		vecs[id] = v
	}
	return items, vecs
}

// exactTopK is the reference scorer: every item, exact dot product,
// descending score with ascending-id tie-break.
func exactTopK(items []int64, vecs map[int64][]float64, q []float64, k int) []int64 {
	type scored struct {
		id    int64
		score float64
	}
	all := make([]scored, 0, len(items))
	for _, id := range items {
		all = append(all, scored{id, dot(q, vecs[id])})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].score != all[b].score {
			return all[a].score > all[b].score
		}
		return all[a].id < all[b].id
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]int64, k)
	for i := range out {
		out[i] = all[i].id
	}
	return out
}

// annTopK serves top-k through the index: probe nprobe lists, re-rank
// candidates with exact dot products.
func annTopK(ix *Index, q []float64, nprobe, k int) []int64 {
	order := ix.ProbeOrder(q)
	cands := ix.Candidates(order, nprobe)
	type scored struct {
		id    int64
		score float64
	}
	all := make([]scored, 0, len(cands))
	for _, p := range cands {
		id, v := ix.At(p)
		all = append(all, scored{id, dot(q, v)})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].score != all[b].score {
			return all[a].score > all[b].score
		}
		return all[a].id < all[b].id
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]int64, k)
	for i := range out {
		out[i] = all[i].id
	}
	return out
}

// TestFullProbeEquivalence is the backbone invariant: at nprobe = K the
// candidate set is exactly the item universe and the re-ranked top-k is
// byte-identical to the exact scan, for every seeded model shape.
func TestFullProbeEquivalence(t *testing.T) {
	cases := []struct {
		n, dim    int
		centroids int
		seed      int64
	}{
		{40, 8, 0, 1},
		{200, 10, 0, 2},
		{500, 10, 16, 3},
		{500, 16, 40, 4},
		{999, 10, 0, 5},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("n%d_dim%d_seed%d", tc.n, tc.dim, tc.seed), func(t *testing.T) {
			items, vecs := synthFactors(tc.n, tc.dim, tc.seed)
			ix := Build(items, vecs, Options{Centroids: tc.centroids, Seed: tc.seed})
			k := ix.NumCentroids()

			// Every item in exactly one posting list.
			total := 0
			for c := 0; c < k; c++ {
				total += len(ix.lists[c])
			}
			if total != tc.n {
				t.Fatalf("posting lists cover %d items, want %d", total, tc.n)
			}

			rng := rand.New(rand.NewSource(tc.seed + 100))
			for trial := 0; trial < 20; trial++ {
				q := make([]float64, tc.dim)
				for d := range q {
					q[d] = rng.NormFloat64()
				}
				order := ix.ProbeOrder(q)
				cands := ix.Candidates(order, k)
				if len(cands) != tc.n {
					t.Fatalf("full probe gathered %d candidates, want %d", len(cands), tc.n)
				}
				for p, c := range cands {
					if int(c) != p {
						t.Fatalf("full-probe candidates not the ascending universe at %d: %d", p, c)
					}
				}
				got := annTopK(ix, q, k, 10)
				want := exactTopK(items, vecs, q, 10)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("full-probe top-10 diverges at %d: got %v want %v", i, got, want)
					}
				}
			}
		})
	}
}

// TestDefaultProbeRecall measures recall@10 at the default nprobe across
// 3 seeds: the approximate path must find at least 90% of the exact
// top-10, averaged over query vectors.
func TestDefaultProbeRecall(t *testing.T) {
	for _, seed := range []int64{11, 22, 33} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			const n, dim, queries = 800, 10, 50
			items, vecs := synthFactors(n, dim, seed)
			ix := Build(items, vecs, Options{Seed: seed})
			if ix.DefaultNProbe() >= ix.NumCentroids() {
				t.Fatalf("default nprobe %d does not prune (K=%d)", ix.DefaultNProbe(), ix.NumCentroids())
			}
			rng := rand.New(rand.NewSource(seed + 7))
			hits, want := 0, 0
			for trial := 0; trial < queries; trial++ {
				q := make([]float64, dim)
				for d := range q {
					q[d] = rng.NormFloat64()
				}
				exact := exactTopK(items, vecs, q, 10)
				approx := annTopK(ix, q, ix.DefaultNProbe(), 10)
				in := make(map[int64]bool, len(approx))
				for _, id := range approx {
					in[id] = true
				}
				for _, id := range exact {
					want++
					if in[id] {
						hits++
					}
				}
			}
			recall := float64(hits) / float64(want)
			t.Logf("recall@10 = %.3f (nprobe %d of %d centroids)", recall, ix.DefaultNProbe(), ix.NumCentroids())
			if recall < 0.9 {
				t.Fatalf("recall@10 = %.3f < 0.9 at default nprobe", recall)
			}
		})
	}
}

// TestBuildWorkerDeterminism: the serialized index must be byte-identical
// at any worker count under one seed.
func TestBuildWorkerDeterminism(t *testing.T) {
	items, vecs := synthFactors(600, 12, 99)
	base := Build(items, vecs, Options{Workers: 1, Seed: 99}).Encode()
	for _, w := range []int{2, 3, 4, 8} {
		got := Build(items, vecs, Options{Workers: w, Seed: 99}).Encode()
		if !bytes.Equal(base, got) {
			t.Fatalf("index built with %d workers differs from serial build", w)
		}
	}
	// And a different seed must (overwhelmingly) differ.
	other := Build(items, vecs, Options{Workers: 1, Seed: 100}).Encode()
	if bytes.Equal(base, other) {
		t.Fatalf("different seeds produced identical indexes")
	}
}

// TestCodecRoundTrip: Encode→Decode is lossless, and decoded indexes
// serve identical probes.
func TestCodecRoundTrip(t *testing.T) {
	items, vecs := synthFactors(300, 10, 5)
	ix := Build(items, vecs, Options{Seed: 5})
	blob := ix.Encode()
	back, err := Decode(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(blob, back.Encode()) {
		t.Fatalf("re-encode differs from original blob")
	}
	q := vecs[items[7]]
	a := annTopK(ix, q, ix.DefaultNProbe(), 10)
	b := annTopK(back, q, back.DefaultNProbe(), 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decoded index serves different top-k: %v vs %v", a, b)
		}
	}
}

// TestCodecCorruption: any single bit flip, truncation, or garbage must
// fail closed.
func TestCodecCorruption(t *testing.T) {
	items, vecs := synthFactors(100, 8, 6)
	blob := Build(items, vecs, Options{Seed: 6}).Encode()
	if _, err := Decode(nil); err == nil {
		t.Fatalf("decoded empty blob")
	}
	if _, err := Decode(blob[:len(blob)/2]); err == nil {
		t.Fatalf("decoded truncated blob")
	}
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 32; trial++ {
		c := append([]byte(nil), blob...)
		c[rng.Intn(len(c))] ^= 1 << uint(rng.Intn(8))
		if _, err := Decode(c); err == nil {
			t.Fatalf("decoded bit-flipped blob (trial %d)", trial)
		}
	}
}

// TestEmptyAndTiny: degenerate inputs must not panic and stay consistent.
func TestEmptyAndTiny(t *testing.T) {
	ix := Build(nil, nil, Options{Seed: 1})
	if ix.NumCentroids() != 0 || ix.NumItems() != 0 {
		t.Fatalf("empty build: %d centroids %d items", ix.NumCentroids(), ix.NumItems())
	}
	one := Build([]int64{7}, map[int64][]float64{7: {1, 2}}, Options{Seed: 1})
	if one.NumCentroids() != 1 || one.DefaultNProbe() != 1 {
		t.Fatalf("single-item build: K=%d nprobe=%d", one.NumCentroids(), one.DefaultNProbe())
	}
	got := annTopK(one, []float64{1, 0}, 1, 10)
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("single-item probe: %v", got)
	}
}
