package ann

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Serialized layout (all integers varint unless noted):
//
//	magic "ANNIVF1\x00"                      8 bytes
//	dim, K, nItems, defaultNProbe            uvarint
//	seed                                     varint (signed)
//	centroids                                K×dim float64, LE bits
//	item ids                                 first absolute (varint), then
//	                                         ascending deltas (uvarint)
//	item vectors                             nItems×dim float64, LE bits
//	assignments                              nItems uvarint centroid indices
//	crc32c of everything above               4 bytes LE
//
// The trailing CRC makes torn or bit-flipped persisted indexes detectable:
// Decode fails closed and the planner falls back to the exact scan.

var annMagic = [8]byte{'A', 'N', 'N', 'I', 'V', 'F', '1', 0}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Encode serializes the index with a trailing CRC32-C.
func (ix *Index) Encode() []byte {
	var buf []byte
	buf = append(buf, annMagic[:]...)
	buf = binary.AppendUvarint(buf, uint64(ix.dim))
	buf = binary.AppendUvarint(buf, uint64(len(ix.centroids)))
	buf = binary.AppendUvarint(buf, uint64(len(ix.items)))
	buf = binary.AppendUvarint(buf, uint64(ix.defaultNProbe))
	buf = binary.AppendVarint(buf, ix.seed)
	for _, c := range ix.centroids {
		for _, f := range c {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
		}
	}
	prev := int64(0)
	for p, id := range ix.items {
		if p == 0 {
			buf = binary.AppendVarint(buf, id)
		} else {
			buf = binary.AppendUvarint(buf, uint64(id-prev))
		}
		prev = id
	}
	for _, v := range ix.vecs {
		for _, f := range v {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
		}
	}
	for _, a := range ix.assign {
		buf = binary.AppendUvarint(buf, uint64(a))
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
}

type decoder struct {
	buf []byte
	off int
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("ann: truncated varint at offset %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("ann: truncated varint at offset %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *decoder) floats(n int) ([]float64, error) {
	if d.off+8*n > len(d.buf) {
		return nil, fmt.Errorf("ann: truncated vector block at offset %d", d.off)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
		d.off += 8
	}
	return out, nil
}

// Decode deserializes an index, verifying the magic and trailing CRC and
// every structural invariant (ascending items, in-range assignments).
func Decode(data []byte) (*Index, error) {
	if len(data) < len(annMagic)+4 {
		return nil, fmt.Errorf("ann: index blob too short (%d bytes)", len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.Checksum(body, crcTable), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("ann: index checksum mismatch (got %08x want %08x)", got, want)
	}
	if string(body[:len(annMagic)]) != string(annMagic[:]) {
		return nil, fmt.Errorf("ann: bad index magic")
	}
	d := &decoder{buf: body, off: len(annMagic)}

	dim64, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	k64, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	n64, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	nprobe64, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	seed, err := d.varint()
	if err != nil {
		return nil, err
	}
	const limit = 1 << 28 // sanity bound against corrupt headers
	dim, k, n := int(dim64), int(k64), int(n64)
	if dim < 0 || k < 0 || n < 0 || dim > limit || k > limit || n > limit {
		return nil, fmt.Errorf("ann: implausible index header (dim=%d k=%d n=%d)", dim, k, n)
	}

	ix := &Index{dim: dim, seed: seed, defaultNProbe: int(nprobe64)}
	ix.centroids = make([][]float64, k)
	for c := range ix.centroids {
		if ix.centroids[c], err = d.floats(dim); err != nil {
			return nil, err
		}
	}
	ix.items = make([]int64, n)
	prev := int64(0)
	for p := range ix.items {
		if p == 0 {
			if prev, err = d.varint(); err != nil {
				return nil, err
			}
		} else {
			delta, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			if delta == 0 {
				return nil, fmt.Errorf("ann: non-ascending item ids")
			}
			prev += int64(delta)
		}
		ix.items[p] = prev
	}
	ix.vecs = make([][]float64, n)
	for p := range ix.vecs {
		if ix.vecs[p], err = d.floats(dim); err != nil {
			return nil, err
		}
	}
	ix.assign = make([]int32, n)
	for p := range ix.assign {
		a, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if int(a) >= k {
			return nil, fmt.Errorf("ann: assignment %d out of range (K=%d)", a, k)
		}
		ix.assign[p] = int32(a)
	}
	if d.off != len(body) {
		return nil, fmt.Errorf("ann: %d trailing bytes after index", len(body)-d.off)
	}
	ix.pos = make(map[int64]int32, n)
	for p, id := range ix.items {
		ix.pos[id] = int32(p)
	}
	ix.buildLists()
	return ix, nil
}
