// Package ann implements a pure-Go inverted-file (IVF) approximate
// nearest-neighbor index over item latent-factor vectors, the vector-native
// serving path for SVD recommenders. Build time k-means clusters the item
// vectors into centroids with per-centroid posting lists; query time ranks
// the centroids by dot product with the user vector, probes the nprobe
// nearest lists, and re-ranks the gathered candidates with exact dot
// products. Probing every centroid visits every item exactly once, so the
// full-probe result is identical to an exact scan — the exactness invariant
// the test harness is built on.
//
// The k-means build follows the repo-wide parallelism discipline: every
// accumulator is owned by exactly one worker and sums its terms in a fixed
// order, so the index is bit-identical at any worker count under one seed.
package ann

import (
	"math"
	"math/rand"
	"sort"
)

// Options tunes index construction.
type Options struct {
	// Centroids is the k-means cluster count K; 0 selects ⌈√n⌉ clamped to
	// [1, n].
	Centroids int
	// Iters is the number of Lloyd iterations; 0 selects 12. Iteration
	// stops early once no assignment changes.
	Iters int
	// NProbe is the default probe width stored on the index; 0 selects
	// ⌈K/4⌉ (a quarter of the centroids), which keeps recall@10 above 0.9
	// on latent-factor workloads while skipping most of the item universe.
	NProbe int
	// Workers bounds the build worker pool (0 = runtime.NumCPU(), 1 =
	// serial). The built index is bit-identical at any worker count.
	Workers int
	// Seed fixes the k-means initialization and makes the build
	// deterministic.
	Seed int64
}

// Index is an IVF index: K centroids over the item vectors, each item
// assigned to exactly one centroid's posting list. Items are held in
// ascending-id order together with their exact vectors, so candidate
// re-ranking needs no table access.
type Index struct {
	dim           int
	seed          int64
	defaultNProbe int
	centroids     [][]float64
	items         []int64     // ascending
	vecs          [][]float64 // parallel to items
	assign        []int32     // item position → centroid
	lists         [][]int32   // centroid → item positions, ascending
	pos           map[int64]int32
}

// Build clusters the given item vectors into an IVF index. items must be
// ascending and every id present in vecs with vectors of equal length.
// A nil or empty input yields an index with zero centroids, which callers
// treat as "no index".
func Build(items []int64, vecs map[int64][]float64, opts Options) *Index {
	n := len(items)
	ix := &Index{seed: opts.Seed}
	if n == 0 {
		ix.pos = map[int64]int32{}
		return ix
	}
	ix.items = append([]int64(nil), items...)
	ix.vecs = make([][]float64, n)
	ix.pos = make(map[int64]int32, n)
	for p, id := range ix.items {
		ix.vecs[p] = vecs[id]
		ix.pos[id] = int32(p)
	}
	ix.dim = len(ix.vecs[0])

	k := opts.Centroids
	if k <= 0 {
		k = int(math.Ceil(math.Sqrt(float64(n))))
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	iters := opts.Iters
	if iters <= 0 {
		iters = 12
	}

	ix.centroids, ix.assign = kmeans(ix.vecs, k, iters, opts.Workers, opts.Seed)
	ix.buildLists()

	ix.defaultNProbe = opts.NProbe
	if ix.defaultNProbe <= 0 {
		ix.defaultNProbe = (k + 3) / 4
	}
	if ix.defaultNProbe > k {
		ix.defaultNProbe = k
	}
	return ix
}

// buildLists derives the posting lists from the assignment vector. Items
// are scanned in ascending order, so every list is ascending too.
func (ix *Index) buildLists() {
	ix.lists = make([][]int32, len(ix.centroids))
	for p := range ix.items {
		c := ix.assign[p]
		ix.lists[c] = append(ix.lists[c], int32(p))
	}
}

// Dim returns the vector dimensionality.
func (ix *Index) Dim() int { return ix.dim }

// Seed returns the build seed.
func (ix *Index) Seed() int64 { return ix.seed }

// NumCentroids returns K, the posting-list count.
func (ix *Index) NumCentroids() int { return len(ix.centroids) }

// NumItems returns the indexed item count.
func (ix *Index) NumItems() int { return len(ix.items) }

// DefaultNProbe returns the index's default probe width.
func (ix *Index) DefaultNProbe() int { return ix.defaultNProbe }

// Items returns the indexed item ids, ascending. Callers must not mutate.
func (ix *Index) Items() []int64 { return ix.items }

// Vector returns the exact stored vector for an item, or nil when the item
// is not indexed. Callers must not mutate.
func (ix *Index) Vector(item int64) []float64 {
	p, ok := ix.pos[item]
	if !ok {
		return nil
	}
	return ix.vecs[p]
}

// At returns the item id and exact vector at a candidate position.
func (ix *Index) At(pos int32) (int64, []float64) {
	return ix.items[pos], ix.vecs[pos]
}

// ProbeOrder ranks every centroid by dot product with the query vector,
// descending, ties broken by ascending centroid index — the deterministic
// probe schedule for one query.
func (ix *Index) ProbeOrder(q []float64) []int32 {
	k := len(ix.centroids)
	scores := make([]float64, k)
	for c, cent := range ix.centroids {
		scores[c] = dot(q, cent)
	}
	order := make([]int32, k)
	for c := range order {
		order[c] = int32(c)
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := order[a], order[b]
		if scores[ca] != scores[cb] {
			return scores[ca] > scores[cb]
		}
		return ca < cb
	})
	return order
}

// Candidates gathers the item positions of the first nprobe posting lists
// of a probe order, ascending. Every item lives in exactly one list, so
// the result is duplicate-free; at nprobe = NumCentroids it is exactly
// [0, NumItems).
func (ix *Index) Candidates(order []int32, nprobe int) []int32 {
	if nprobe > len(order) {
		nprobe = len(order)
	}
	total := 0
	for _, c := range order[:nprobe] {
		total += len(ix.lists[c])
	}
	out := make([]int32, 0, total)
	for _, c := range order[:nprobe] {
		out = append(out, ix.lists[c]...)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// dot returns the inner product of two equal-length vectors, summed in
// ascending dimension order.
func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// kmeans runs Lloyd's algorithm with deterministic seeded initialization
// and the repo's bit-identical parallel schedule: the assignment step
// partitions items into contiguous chunks (each slot written by one
// worker), and the update step partitions centroids across workers (worker
// w owns centroids ≡ w mod workers) with every owner scanning the items in
// ascending order, so the float sums form in the same order at any worker
// count.
func kmeans(vecs [][]float64, k, iters, workers int, seed int64) ([][]float64, []int32) {
	n := len(vecs)
	dim := len(vecs[0])
	workers = resolveWorkers(workers)

	// Seeded init: k distinct item positions drawn by a fixed-seed
	// permutation, sorted so the centroid numbering is stable.
	rng := rand.New(rand.NewSource(mixSeed(seed, int64(n), int64(k))))
	picks := rng.Perm(n)[:k]
	sort.Ints(picks)
	centroids := make([][]float64, k)
	for c, p := range picks {
		centroids[c] = append([]float64(nil), vecs[p]...)
	}

	assign := make([]int32, n)
	for i := range assign {
		assign[i] = -1
	}
	changed := make([]int, workers)
	for it := 0; it < iters; it++ {
		// Assignment: nearest centroid by squared Euclidean distance, ties
		// to the lower centroid index. Chunk-disjoint writes.
		runChunks(workers, n, func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				best := int32(0)
				bestD := math.Inf(1)
				v := vecs[i]
				for c := range centroids {
					d := sqDist(v, centroids[c])
					if d < bestD {
						bestD = d
						best = int32(c)
					}
				}
				if assign[i] != best {
					assign[i] = best
					changed[w]++
				}
			}
		})
		moved := 0
		for w := range changed {
			moved += changed[w]
			changed[w] = 0
		}
		if moved == 0 {
			break
		}
		// Update: worker w owns centroids ≡ w mod workers and scans every
		// item in ascending order, accumulating only its own centroids'
		// sums — one owner per accumulator, fixed summation order.
		runWorkers(workers, func(w int) {
			sums := make([]float64, 0, dim)
			for c := w; c < k; c += workers {
				sums = sums[:0]
				for d := 0; d < dim; d++ {
					sums = append(sums, 0)
				}
				count := 0
				for i := 0; i < n; i++ {
					if int(assign[i]) != c {
						continue
					}
					v := vecs[i]
					for d := 0; d < dim; d++ {
						sums[d] += v[d]
					}
					count++
				}
				if count == 0 {
					continue // empty cluster keeps its previous centroid
				}
				inv := 1 / float64(count)
				for d := 0; d < dim; d++ {
					centroids[c][d] = sums[d] * inv
				}
			}
		})
	}
	return centroids, assign
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
