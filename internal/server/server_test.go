package server_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"recdb"
	"recdb/client"
	"recdb/internal/server"
	"recdb/internal/wire"
)

// startServer serves db on a loopback listener and returns the address
// and a shutdown function.
func startServer(t *testing.T, db *recdb.DB, opts server.Options) (string, *server.Server) {
	t.Helper()
	srv := server.New(db, opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
		db.Close()
	})
	return ln.Addr().String(), srv
}

func seededDB(t *testing.T) *recdb.DB {
	t.Helper()
	db := recdb.Open()
	db.MustExec(`CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT)`)
	var stmts []string
	for u := 1; u <= 8; u++ {
		for i := 1; i <= 12; i++ {
			if (u+i)%3 == 0 {
				continue // leave unseen items to recommend
			}
			stmts = append(stmts, fmt.Sprintf(`INSERT INTO ratings VALUES (%d, %d, %d.0)`, u, i, (u*i)%5+1))
		}
	}
	if _, err := db.ExecScript(strings.Join(stmts, ";\n")); err != nil {
		t.Fatal(err)
	}
	db.MustExec(`CREATE RECOMMENDER Rec ON ratings USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF`)
	return db
}

func TestQueryExecPingRoundTrip(t *testing.T) {
	addr, _ := startServer(t, seededDB(t), server.Options{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if c.SessionID() == 0 {
		t.Fatal("no session id in handshake")
	}
	ctx := context.Background()
	if err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}

	res, err := c.Exec(ctx, `INSERT INTO ratings VALUES (99, 1, 5.0), (99, 2, 4.0)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 2 {
		t.Fatalf("RowsAffected = %d, want 2", res.RowsAffected)
	}

	rows, err := c.Query(ctx, `SELECT uid, iid, ratingval FROM ratings WHERE uid = 99 ORDER BY iid ASC`)
	if err != nil {
		t.Fatal(err)
	}
	if got := rows.Len(); got != 2 {
		t.Fatalf("rows = %d, want 2", got)
	}
	if cols := rows.Columns(); len(cols) != 3 || cols[0] != "uid" {
		t.Fatalf("columns = %v", cols)
	}
	if !rows.Next() {
		t.Fatal("Next returned false")
	}
	var uid, iid int64
	var rating float64
	if err := rows.Scan(&uid, &iid, &rating); err != nil {
		t.Fatal(err)
	}
	if uid != 99 || iid != 1 || rating != 5.0 {
		t.Fatalf("row = (%d, %d, %g)", uid, iid, rating)
	}

	rec, err := c.Query(ctx, `SELECT R.iid, R.ratingval FROM ratings R RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF WHERE R.uid = 2 ORDER BY R.ratingval DESC LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("RECOMMEND returned no rows")
	}
	if rec.Strategy() == "" {
		t.Fatal("RECOMMEND answer carried no strategy")
	}

	if _, err := c.Query(ctx, `SELECT nope FROM nowhere`); err == nil {
		t.Fatal("bad query did not error")
	} else {
		var se *client.ServerError
		if !errors.As(err, &se) || se.Code != wire.CodeQuery {
			t.Fatalf("bad query error = %v", err)
		}
	}
	// The connection survives a query error.
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("ping after query error: %v", err)
	}
}

// TestHighFanoutScan pulls a result well past the row-batch chunk size
// through the wire, so the answer spans several RowBatch frames and at
// least one flush boundary; every row must arrive intact and in order.
func TestHighFanoutScan(t *testing.T) {
	db := recdb.Open()
	db.MustExec(`CREATE TABLE blobs (id INT, pad TEXT)`)
	pad := strings.Repeat("x", 100)
	var stmts []string
	for i := 0; i < 1200; i++ {
		stmts = append(stmts, fmt.Sprintf(`INSERT INTO blobs VALUES (%d, '%s')`, i, pad))
	}
	if _, err := db.ExecScript(strings.Join(stmts, ";\n")); err != nil {
		t.Fatal(err)
	}
	addr, _ := startServer(t, db, server.Options{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	rows, err := c.Query(context.Background(), `SELECT id, pad FROM blobs ORDER BY id ASC`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1200 {
		t.Fatalf("rows = %d, want 1200", rows.Len())
	}
	for i := 0; rows.Next(); i++ {
		var id int64
		var p string
		if err := rows.Scan(&id, &p); err != nil {
			t.Fatal(err)
		}
		if id != int64(i) || p != pad {
			t.Fatalf("row %d = (%d, %d pad bytes)", i, id, len(p))
		}
	}
}

// TestConcurrentClients is the acceptance hammer: 64 clients of mixed
// traffic under -race, zero dropped responses.
func TestConcurrentClients(t *testing.T) {
	const clients = 64
	const perClient = 8
	addr, _ := startServer(t, seededDB(t), server.Options{MaxConns: clients + 4})
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs <- fmt.Errorf("client %d: dial: %w", n, err)
				return
			}
			defer func() { _ = c.Close() }()
			for j := 0; j < perClient; j++ {
				switch j % 4 {
				case 0:
					if err := c.Ping(ctx); err != nil {
						errs <- fmt.Errorf("client %d ping %d: %w", n, j, err)
						return
					}
				case 1:
					res, err := c.Exec(ctx, fmt.Sprintf(`INSERT INTO ratings VALUES (%d, %d, 3.0)`, 1000+n, j+1))
					if err != nil || res.RowsAffected != 1 {
						errs <- fmt.Errorf("client %d exec %d: affected=%d err=%w", n, j, res.RowsAffected, err)
						return
					}
				case 2:
					rows, err := c.Query(ctx, fmt.Sprintf(`SELECT iid, ratingval FROM ratings WHERE uid = %d`, n%8+1))
					if err != nil || rows.Len() == 0 {
						errs <- fmt.Errorf("client %d lookup %d: len=%v err=%w", n, j, rows.Len(), err)
						return
					}
				case 3:
					rows, err := c.Query(ctx, fmt.Sprintf(`SELECT R.iid, R.ratingval FROM ratings R RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF WHERE R.uid = %d ORDER BY R.ratingval DESC LIMIT 5`, n%8+1))
					if err != nil {
						errs <- fmt.Errorf("client %d recommend %d: %w", n, j, err)
						return
					}
					_ = rows
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestBusyRejection(t *testing.T) {
	addr, _ := startServer(t, seededDB(t), server.Options{MaxConns: 2})
	c1, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c1.Close() }()
	c2, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c2.Close() }()

	// The third connection must be refused with a typed busy error.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err = client.Dial(addr)
		var se *client.ServerError
		if errors.As(err, &se) {
			if se.Code != wire.CodeBusy {
				t.Fatalf("rejection code = %q, want %q", se.Code, wire.CodeBusy)
			}
			break
		}
		// The server counts a session only after dispatch; a fast dial
		// can race ahead of the first two registrations. Retry briefly.
		if time.Now().After(deadline) {
			t.Fatalf("third dial never rejected (last err: %v)", err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Freeing a slot readmits new clients.
	_ = c2.Close()
	deadline = time.Now().Add(5 * time.Second)
	for {
		c4, err := client.Dial(addr)
		if err == nil {
			_ = c4.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dial after free never admitted: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// slowQuery is a cross join sized to run long enough to interrupt: the
// seeded ratings table to the fourth power is tens of millions of tuples
// through nested-loop joins, seconds of work, far past the test timeouts.
const slowQuery = `SELECT A.uid FROM ratings A, ratings B, ratings C, ratings D WHERE A.uid > B.uid AND B.iid > C.iid AND C.uid > D.uid AND A.ratingval > 4.0`

func TestPerQueryTimeout(t *testing.T) {
	addr, _ := startServer(t, seededDB(t), server.Options{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err = c.Query(ctx, slowQuery)
	var se *client.ServerError
	if !errors.As(err, &se) || (se.Code != wire.CodeTimeout && se.Code != wire.CodeCanceled) {
		t.Fatalf("timed-out query returned %v, want timeout/canceled ServerError", err)
	}
	// The session survives and serves the next statement.
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("ping after timeout: %v", err)
	}
}

func TestServerSideQueryTimeout(t *testing.T) {
	addr, _ := startServer(t, seededDB(t), server.Options{QueryTimeout: 30 * time.Millisecond})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	_, err = c.Query(context.Background(), slowQuery)
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != wire.CodeTimeout {
		t.Fatalf("server-side timeout returned %v, want %q", err, wire.CodeTimeout)
	}
}

func TestCancelInFlightQuery(t *testing.T) {
	addr, _ := startServer(t, seededDB(t), server.Options{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = c.Query(ctx, slowQuery)
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != wire.CodeCanceled {
		t.Fatalf("canceled query returned %v, want %q", err, wire.CodeCanceled)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancel took %v; the scan ran to completion", elapsed)
	}
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("ping after cancel: %v", err)
	}
}

// TestGracefulShutdown pins the drain contract: an in-flight statement
// completes with its full answer, and the final checkpoint lands.
func TestGracefulShutdown(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "home")
	db := recdb.Open()
	db.MustExec(`CREATE TABLE kv (k INT, v INT)`)
	db.MustExec(`INSERT INTO kv VALUES (1, 1), (2, 2), (3, 3)`)
	if err := db.SaveTo(dir); err != nil {
		t.Fatal(err)
	}
	genBefore := db.Durability().Generation

	srv := server.New(db, server.Options{})
	// Hold the statement in flight long enough for Shutdown to arrive
	// while it runs.
	inFlight := make(chan struct{})
	server.SetExecHookForTest(srv, func(sql string) {
		if strings.Contains(sql, "FROM kv A") {
			close(inFlight)
			time.Sleep(200 * time.Millisecond)
		}
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	queryDone := make(chan error, 1)
	go func() {
		rows, err := c.Query(context.Background(), `SELECT A.k FROM kv A, kv B, kv C`)
		if err == nil && rows.Len() != 27 {
			err = fmt.Errorf("drained query returned %d rows, want 27", rows.Len())
		}
		queryDone <- err
	}()
	<-inFlight

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if err := <-queryDone; err != nil {
		t.Fatalf("in-flight query: %v", err)
	}
	if gen := db.Durability().Generation; gen <= genBefore {
		t.Fatalf("no final checkpoint: generation %d -> %d", genBefore, gen)
	}
	db.Close()

	// New connections during/after drain are refused.
	if _, err := client.Dial(ln.Addr().String()); err == nil {
		t.Fatal("dial after shutdown succeeded")
	}
}

func TestPanicIsolation(t *testing.T) {
	db := seededDB(t)
	srv := server.New(db, server.Options{})
	server.SetExecHookForTest(srv, func(sql string) {
		if strings.Contains(sql, "boom") {
			panic("kaboom")
		}
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		<-serveDone
		db.Close()
	})

	victim, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = victim.Close() }()
	bystander, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = bystander.Close() }()

	_, err = victim.Query(context.Background(), `SELECT boom FROM ratings`)
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != wire.CodeInternal {
		t.Fatalf("panicked statement returned %v, want %q", err, wire.CodeInternal)
	}
	// The panicking session is closed...
	if err := victim.Ping(context.Background()); err == nil {
		t.Fatal("victim session survived a panic")
	}
	// ...but the server and its other sessions keep working.
	if err := bystander.Ping(context.Background()); err != nil {
		t.Fatalf("bystander session broken: %v", err)
	}
	if got, ok := db.Metrics().Get("server.panics"); !ok || got != 1 {
		t.Fatalf("server.panics = %d (%v), want 1", got, ok)
	}
}

func TestServerMetricsRecorded(t *testing.T) {
	db := seededDB(t)
	addr, _ := startServer(t, db, server.Options{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(context.Background(), `SELECT uid FROM ratings WHERE uid = 1`); err != nil {
		t.Fatal(err)
	}
	_ = c.Close()

	snap := db.Metrics()
	for _, name := range []string{"server.sessions_opened", "server.queries", "server.bytes_in", "server.bytes_out"} {
		if v, ok := snap.Get(name); !ok || v <= 0 {
			t.Errorf("%s = %d (present=%v), want > 0", name, v, ok)
		}
	}
	for _, h := range snap.Histograms {
		if h.Name == "server.query_ns" && h.Count > 0 {
			return
		}
	}
	t.Error("server.query_ns histogram recorded nothing")
}

func TestMetricsHTTPEndpoints(t *testing.T) {
	db := seededDB(t)
	addr, stop, err := server.ServeMetrics(db, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = stop()
		db.Close()
	}()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	text := get("/metrics")
	if !strings.Contains(text, "exec.queries") {
		t.Fatalf("/metrics text missing engine counters:\n%s", text)
	}
	for _, path := range []string{"/metrics.json", "/debug/vars"} {
		body := get(path)
		if !strings.Contains(body, `"exec.queries"`) || !strings.HasPrefix(body, "{") {
			t.Fatalf("%s is not the expected JSON:\n%s", path, body)
		}
	}
}

// TestRawProtocolRejections drives the TCP surface without the client:
// bad magic and corrupt frames get typed protocol errors.
func TestRawProtocolRejections(t *testing.T) {
	addr, _ := startServer(t, seededDB(t), server.Options{})

	t.Run("bad magic", func(t *testing.T) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = conn.Close() }()
		if _, err := conn.Write([]byte("HTTP/1\n")); err != nil {
			t.Fatal(err)
		}
		typ, payload, _, err := wire.ReadFrame(conn, nil)
		if err != nil || typ != wire.TypeError {
			t.Fatalf("frame type %q err %v, want Error frame", byte(typ), err)
		}
		e, err := wire.DecodeError(payload)
		if err != nil || e.Code != wire.CodeProtocol {
			t.Fatalf("error = %+v (%v), want code %q", e, err, wire.CodeProtocol)
		}
	})

	t.Run("corrupt frame", func(t *testing.T) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = conn.Close() }()
		if _, err := conn.Write([]byte(wire.Magic)); err != nil {
			t.Fatal(err)
		}
		typ, _, _, err := wire.ReadFrame(conn, nil)
		if err != nil || typ != wire.TypeHello {
			t.Fatalf("handshake: type %q err %v", byte(typ), err)
		}
		// A frame with a corrupted CRC must be rejected, not executed.
		var buf strings.Builder
		if err := wire.WriteFrame(&buf, wire.TypePing, wire.AppendID(nil, 7)); err != nil {
			t.Fatal(err)
		}
		raw := []byte(buf.String())
		raw[5] ^= 0xff // flip a CRC byte
		if _, err := conn.Write(raw); err != nil {
			t.Fatal(err)
		}
		typ, payload, _, err := wire.ReadFrame(conn, nil)
		if err != nil || typ != wire.TypeError {
			t.Fatalf("frame type %q err %v, want Error frame", byte(typ), err)
		}
		e, err := wire.DecodeError(payload)
		if err != nil || e.Code != wire.CodeProtocol {
			t.Fatalf("error = %+v (%v), want code %q", e, err, wire.CodeProtocol)
		}
		// The server then drops the connection: framing state is gone.
		if _, _, _, err := wire.ReadFrame(conn, nil); err == nil {
			t.Fatal("connection survived a corrupt frame")
		}
	})
}

// ratingCount reads COUNT(*) for one uid straight through the embedded
// DB, bypassing the wire protocol.
func ratingCount(t *testing.T, db *recdb.DB, uid int) int64 {
	t.Helper()
	rows, err := db.Query(fmt.Sprintf("SELECT COUNT(*) FROM ratings WHERE uid = %d", uid))
	if err != nil || !rows.Next() {
		t.Fatalf("counting uid %d: %v", uid, err)
	}
	var n int64
	if err := rows.Scan(&n); err != nil {
		t.Fatal(err)
	}
	return n
}

// openSnapshots reports the ratings heap's open snapshot handles — the
// pins a transaction holds while in flight and must release when done.
func openSnapshots(t *testing.T, db *recdb.DB) int {
	t.Helper()
	tab, err := db.Engine().Catalog().Get("ratings")
	if err != nil {
		t.Fatal(err)
	}
	return tab.Heap.OpenSnapshots()
}

// waitRollback polls until the dropped session's transaction is rolled
// back: its rows gone, its table gate free, and its snapshot pins
// released.
func waitRollback(t *testing.T, db *recdb.DB, uid int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ratingCount(t, db, uid) == 0 && openSnapshots(t, db) == 0 {
			// The table gate must be free again for the next writer.
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			_, err := db.ExecContext(ctx, fmt.Sprintf("DELETE FROM ratings WHERE uid = %d", uid))
			cancel()
			if err == nil {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("transaction for uid %d not rolled back: %d rows, %d open snapshots",
		uid, ratingCount(t, db, uid), openSnapshots(t, db))
}

func TestTransactionOverWire(t *testing.T) {
	db := seededDB(t)
	addr, _ := startServer(t, db, server.Options{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	// COMMIT makes the transaction's writes visible and durable.
	if _, err := c.Exec(ctx, "BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(ctx, "INSERT INTO ratings VALUES (90, 1, 5.0); INSERT INTO ratings VALUES (90, 2, 4.0)"); err != nil {
		t.Fatal(err)
	}
	// The session's own reads see the uncommitted writes.
	rows, err := c.Query(ctx, "SELECT COUNT(*) FROM ratings WHERE uid = 90")
	if err != nil || !rows.Next() {
		t.Fatalf("in-txn read: %v", err)
	}
	var n int64
	if err := rows.Scan(&n); err != nil || n != 2 {
		t.Fatalf("in-txn count = %d, %v (want 2)", n, err)
	}
	if _, err := c.Exec(ctx, "COMMIT"); err != nil {
		t.Fatal(err)
	}
	if got := ratingCount(t, db, 90); got != 2 {
		t.Fatalf("committed rows = %d, want 2", got)
	}

	// ROLLBACK undoes them.
	if _, err := c.Exec(ctx, "BEGIN; INSERT INTO ratings VALUES (91, 1, 5.0); ROLLBACK"); err != nil {
		t.Fatal(err)
	}
	if got := ratingCount(t, db, 91); got != 0 {
		t.Fatalf("rolled-back rows = %d, want 0", got)
	}
	if got := openSnapshots(t, db); got != 0 {
		t.Fatalf("open snapshots after wire transactions = %d, want 0", got)
	}
}

// TestSessionDropRollsBackTransaction kills a client that is sitting in
// an open transaction and asserts the server rolls it back: the writes
// vanish, the table's write gate frees, and the snapshot pins release.
func TestSessionDropRollsBackTransaction(t *testing.T) {
	db := seededDB(t)
	addr, _ := startServer(t, db, server.Options{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := c.Exec(ctx, "BEGIN; INSERT INTO ratings VALUES (99, 1, 5.0)"); err != nil {
		t.Fatal(err)
	}
	if got := ratingCount(t, db, 99); got != 1 {
		t.Fatalf("in-flight transaction rows = %d, want 1", got)
	}
	// Drop the connection with the transaction still open.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	waitRollback(t, db, 99)
}

// TestSessionDropDuringCommit drops the connection at the moment COMMIT
// starts executing. The commit itself must stay atomic — afterwards the
// transaction is either fully committed or fully rolled back, with all
// locks and pins released either way.
func TestSessionDropDuringCommit(t *testing.T) {
	db := seededDB(t)
	srv := server.New(db, server.Options{})
	var victimMu sync.Mutex
	var victim net.Conn
	var once sync.Once
	server.SetExecHookForTest(srv, func(sql string) {
		if strings.Contains(sql, "COMMIT") {
			once.Do(func() {
				victimMu.Lock()
				defer victimMu.Unlock()
				if victim != nil {
					_ = victim.Close()
				}
			})
		}
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
		db.Close()
	}()

	// The client wrapper serializes each request under a mutex the hook
	// would also need, so this test speaks the wire protocol over a bare
	// conn it can sever at any moment.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	victimMu.Lock()
	victim = conn
	victimMu.Unlock()
	if _, err := conn.Write([]byte(wire.Magic)); err != nil {
		t.Fatal(err)
	}
	if typ, _, _, err := wire.ReadFrame(conn, nil); err != nil || typ != wire.TypeHello {
		t.Fatalf("handshake: type %q err %v", byte(typ), err)
	}
	rawExec := func(id uint32, sql string) error {
		if err := wire.WriteFrame(conn, wire.TypeExec,
			wire.AppendRequest(nil, wire.Request{ID: id, SQL: sql})); err != nil {
			return err
		}
		for {
			typ, payload, _, err := wire.ReadFrame(conn, nil)
			if err != nil {
				return err
			}
			switch typ {
			case wire.TypeComplete:
				return nil
			case wire.TypeError:
				e, derr := wire.DecodeError(payload)
				if derr != nil {
					return derr
				}
				return fmt.Errorf("%s: %s", e.Code, e.Message)
			}
		}
	}
	if err := rawExec(1, "BEGIN; INSERT INTO ratings VALUES (98, 1, 5.0); INSERT INTO ratings VALUES (98, 2, 4.0)"); err != nil {
		t.Fatal(err)
	}
	// The connection dies as COMMIT starts executing; its answer can
	// never arrive.
	if err := rawExec(2, "COMMIT"); err == nil {
		t.Fatal("COMMIT answered on a severed connection")
	}

	// Whatever raced, atomicity holds: 0 or 2 rows, never 1 — and the
	// locks and pins must come free.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if openSnapshots(t, db) == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := openSnapshots(t, db); got != 0 {
		t.Fatalf("open snapshots after dropped commit = %d, want 0", got)
	}
	if got := ratingCount(t, db, 98); got != 0 && got != 2 {
		t.Fatalf("dropped commit left a partial transaction: %d rows", got)
	}
	// The table accepts new writers again.
	ctx2, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := db.ExecContext(ctx2, "DELETE FROM ratings WHERE uid = 98"); err != nil {
		t.Fatalf("table still locked after dropped commit: %v", err)
	}
}
