// Package server is the network serving layer: it exposes an embedded
// recdb.DB over TCP speaking the wire protocol (internal/wire), turning
// the library into recdb-server.
//
// Each accepted connection becomes a session with a server-assigned id.
// A session runs two goroutines: a reader that decodes frames (answering
// Ping and Cancel immediately, even while a statement runs) and a worker
// that executes Query/Exec requests one at a time in arrival order and
// streams the response frames back. Per-query timeouts and client Cancel
// frames travel as context cancellation into the executor's operator
// tree, so an interrupted scan stops between rows instead of running to
// completion for nobody.
//
// Backpressure is a hard connection limit: once MaxConns sessions are
// live, further connections are answered with a typed "busy" Error frame
// and closed, so an overload sheds load at accept time instead of
// queueing unbounded work. Shutdown drains: the listener closes, live
// statements run to completion, queued-but-unstarted requests are
// answered "shutdown", and — when the database has a durable home — a
// final checkpoint lands before Shutdown returns.
//
// A panic inside one session's statement is recovered, answered with an
// "internal" Error frame, and closes only that session; the server and
// its other sessions keep running.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"recdb"
	"recdb/internal/metrics"
	"recdb/internal/wire"
)

// Options tunes a Server. The zero value serves with the defaults noted
// on each field.
type Options struct {
	// MaxConns caps live sessions; further connections are rejected with
	// a "busy" Error frame (0 = 64).
	MaxConns int
	// QueryTimeout bounds each statement's execution. A request's own
	// TimeoutMillis tightens but never loosens it (0 = no server bound).
	QueryTimeout time.Duration
	// IdleTimeout closes a session with no request in flight and no
	// bytes arriving (0 = 5 minutes).
	IdleTimeout time.Duration
	// WriteTimeout bounds each response flush (0 = 30 seconds).
	WriteTimeout time.Duration
	// Name is the server string sent in the Hello frame (default "recdb").
	Name string
	// Logf receives connection-level diagnostics (nil = silent).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.MaxConns <= 0 {
		o.MaxConns = 64
	}
	if o.IdleTimeout <= 0 {
		o.IdleTimeout = 5 * time.Minute
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 30 * time.Second
	}
	if o.Name == "" {
		o.Name = "recdb"
	}
	return o
}

// serverMetrics is the serving layer's slice of the engine registry.
type serverMetrics struct {
	connsActive    *metrics.Gauge
	sessionsOpened *metrics.Counter
	sessionsClosed *metrics.Counter
	queries        *metrics.Counter
	queryNs        *metrics.Histogram
	bytesIn        *metrics.Counter
	bytesOut       *metrics.Counter
	rejectedBusy   *metrics.Counter
	panics         *metrics.Counter
}

func newServerMetrics(r *metrics.Registry) serverMetrics {
	return serverMetrics{
		connsActive:    r.Gauge("server.conns_active"),
		sessionsOpened: r.Counter("server.sessions_opened"),
		sessionsClosed: r.Counter("server.sessions_closed"),
		queries:        r.Counter("server.queries"),
		queryNs:        r.Histogram("server.query_ns"),
		bytesIn:        r.Counter("server.bytes_in"),
		bytesOut:       r.Counter("server.bytes_out"),
		rejectedBusy:   r.Counter("server.rejected_busy"),
		panics:         r.Counter("server.panics"),
	}
}

// Server serves one recdb.DB to network clients.
type Server struct {
	db   *recdb.DB
	opts Options
	m    serverMetrics

	// testExecHook, when set before Serve, runs just before each
	// statement executes — the panic-isolation tests use it to blow up a
	// chosen statement without needing a crashing SQL input.
	testExecHook func(sql string)

	mu       sync.Mutex
	ln       net.Listener
	sessions map[uint64]*session
	nextSID  uint64
	draining bool

	wg sync.WaitGroup
}

// New wraps db in a Server. The server records into db's own metrics
// registry, so `\metrics` and the HTTP exporter see serving-layer
// instruments next to engine ones.
func New(db *recdb.DB, opts Options) *Server {
	return &Server{
		db:       db,
		opts:     opts.withDefaults(),
		m:        newServerMetrics(db.Engine().Metrics()),
		sessions: make(map[uint64]*session),
	}
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", addr, err)
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until it fails or Shutdown closes it.
// It returns nil after a Shutdown, the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		_ = ln.Close()
		return errors.New("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		s.dispatch(conn)
	}
}

// Addr returns the listening address ("" before Serve).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// dispatch admits conn as a session or rejects it with a typed error
// frame when the server is at capacity or draining.
func (s *Server) dispatch(conn net.Conn) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.rejectConn(conn, wire.CodeShutdown, "server is shutting down")
		return
	}
	if len(s.sessions) >= s.opts.MaxConns {
		s.mu.Unlock()
		s.m.rejectedBusy.Inc()
		s.rejectConn(conn, wire.CodeBusy,
			fmt.Sprintf("server at its %d-connection limit", s.opts.MaxConns))
		return
	}
	s.nextSID++
	sess := newSession(s, s.nextSID, conn)
	s.sessions[sess.id] = sess
	s.mu.Unlock()

	s.m.connsActive.Add(1)
	s.m.sessionsOpened.Inc()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		sess.run()
		s.mu.Lock()
		delete(s.sessions, sess.id)
		s.mu.Unlock()
		s.m.connsActive.Add(-1)
		s.m.sessionsClosed.Inc()
	}()
}

// rejectConn answers a connection the server will not admit, off the
// accept loop so a slow or dead peer cannot stall other accepts.
func (s *Server) rejectConn(conn net.Conn, code, msg string) {
	go func() {
		_ = conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
		_ = wire.WriteFrame(conn, wire.TypeError,
			wire.AppendError(nil, wire.ErrorMsg{Code: code, Message: msg}))
		_ = conn.Close()
	}()
}

// Shutdown drains the server: stop accepting, let in-flight statements
// finish, answer queued-but-unstarted requests with "shutdown", wait for
// every session to end, then checkpoint the database if it has a durable
// home. If ctx expires first, remaining connections are closed hard (the
// checkpoint still runs) and ctx's error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	ln := s.ln
	live := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		live = append(live, sess)
	}
	s.mu.Unlock()
	if already {
		return errors.New("server: already shut down")
	}
	if ln != nil {
		_ = ln.Close()
	}
	for _, sess := range live {
		sess.beginDrain()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		drainErr = fmt.Errorf("server: drain interrupted: %w", ctx.Err())
		for _, sess := range live {
			sess.closeConn()
		}
		<-done
	}

	if info := s.db.Durability(); info.Attached {
		if err := s.db.SaveTo(info.Dir); err != nil {
			return fmt.Errorf("server: final checkpoint: %w", err)
		}
	}
	return drainErr
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}
