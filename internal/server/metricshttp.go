package server

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"

	"recdb"
)

// MetricsHandler serves db's metrics snapshot over HTTP:
//
//	/metrics       the registry as sorted "name value" text lines
//	/metrics.json  expvar-style JSON: counters and gauges as numbers,
//	/debug/vars    histograms as {count, sum, mean, p50, p99} objects
//
// Every request takes a fresh snapshot; the instruments themselves are
// lock-free, so scraping never stalls query traffic.
func MetricsHandler(db *recdb.DB) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, db.Metrics().String())
	})
	serveJSON := func(w http.ResponseWriter, r *http.Request) {
		snap := db.Metrics()
		vars := make(map[string]any, len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms))
		for _, c := range snap.Counters {
			vars[c.Name] = c.Value
		}
		for _, g := range snap.Gauges {
			vars[g.Name] = g.Value
		}
		for _, h := range snap.Histograms {
			vars[h.Name] = map[string]any{
				"count": h.Count, "sum": h.Sum, "mean": h.Mean,
				"p50": h.P50, "p99": h.P99,
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(vars)
	}
	mux.HandleFunc("/metrics.json", serveJSON)
	mux.HandleFunc("/debug/vars", serveJSON)
	return mux
}

// ServeMetrics starts the metrics HTTP listener on addr and returns the
// bound address and a stop function. It serves in the background until
// stopped; serve errors after stop are ignored.
func ServeMetrics(db *recdb.DB, addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("server: metrics listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: MetricsHandler(db)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
