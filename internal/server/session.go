package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"recdb"
	"recdb/internal/metrics"
	"recdb/internal/types"
	"recdb/internal/wire"
)

// pipelineDepth bounds how many decoded requests may sit between the
// reader and the worker; a client pipelining past it gets "busy" answers
// instead of growing an unbounded queue.
const pipelineDepth = 16

// request is one decoded Query or Exec frame awaiting execution.
type request struct {
	kind wire.Type
	req  wire.Request
}

// session is one client connection. The reader goroutine decodes frames
// — answering Ping and Cancel immediately — and hands Query/Exec
// requests to the worker goroutine, which executes them one at a time
// and streams responses. mu guards the request-lifecycle state shared
// between the two.
type session struct {
	srv  *Server
	id   uint64
	conn net.Conn
	in   *countReader
	out  *frameWriter
	reqs chan request
	// sess carries per-connection transaction state (BEGIN/COMMIT/
	// ROLLBACK). Only the worker goroutine touches it while the
	// connection lives; run closes it after the worker exits, rolling
	// back any transaction a dropped client left open.
	sess *recdb.Session

	mu        sync.Mutex
	pending   int                // requests enqueued but not yet answered
	curID     uint32             // id of the statement now executing
	curCancel context.CancelFunc // interrupts it; nil between statements
	draining  bool
}

func newSession(srv *Server, id uint64, conn net.Conn) *session {
	return &session{
		srv:  srv,
		id:   id,
		conn: conn,
		in:   &countReader{r: conn, c: srv.m.bytesIn},
		out:  newFrameWriter(conn, srv.m.bytesOut, srv.opts.WriteTimeout),
		reqs: make(chan request, pipelineDepth),
		sess: srv.db.NewSession(),
	}
}

// run drives the session to completion: handshake, then reader and
// worker until the connection ends.
func (s *session) run() {
	defer s.closeConn()
	// A client that vanished mid-transaction must not leave its table
	// locks and snapshot pins held: closing the statement session rolls
	// the transaction back. Runs after the worker has exited, which is
	// the only goroutine using sess.
	defer func() { _ = s.sess.Close() }()
	if err := s.handshake(); err != nil {
		s.srv.logf("session %d: %v", s.id, err)
		return
	}
	done := make(chan struct{})
	go func() {
		s.worker()
		close(done)
	}()
	s.reader()
	// The client is gone (or broke protocol): stop the running statement
	// rather than finishing a scan nobody will read.
	s.cancelCurrent()
	close(s.reqs)
	<-done
}

// handshake consumes the client's magic preamble and answers Hello.
func (s *session) handshake() error {
	_ = s.conn.SetReadDeadline(time.Now().Add(s.srv.opts.IdleTimeout))
	var magic [len(wire.Magic)]byte
	if _, err := io.ReadFull(s.in, magic[:]); err != nil {
		return fmt.Errorf("reading magic: %w", err)
	}
	if string(magic[:]) != wire.Magic {
		_ = s.out.writeError(wire.ErrorMsg{Code: wire.CodeProtocol, Message: "bad protocol magic"})
		return errors.New("bad protocol magic")
	}
	return s.out.write(wire.TypeHello,
		wire.AppendHello(nil, wire.Hello{SessionID: s.id, Server: s.srv.opts.Name}), true)
}

// reader decodes frames until the connection ends or breaks protocol.
// The idle deadline only fires a disconnect when no request is pending
// and no partial frame has arrived; while a statement runs, a quiet
// client is expected and the deadline just re-arms.
func (s *session) reader() {
	buf := make([]byte, 512)
	for {
		_ = s.conn.SetReadDeadline(time.Now().Add(s.srv.opts.IdleTimeout))
		before := s.in.n
		t, payload, nbuf, err := wire.ReadFrame(s.in, buf)
		buf = nbuf
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() && s.in.n == before && s.hasPending() {
				continue
			}
			var fe *wire.FrameError
			if errors.As(err, &fe) {
				_ = s.out.writeError(wire.ErrorMsg{Code: wire.CodeProtocol, Message: fe.Error()})
			}
			return
		}
		switch t {
		case wire.TypePing:
			id, err := wire.DecodeID(payload)
			if err != nil {
				s.protocolFault(err)
				return
			}
			_ = s.out.write(wire.TypePong, wire.AppendID(nil, id), true)
		case wire.TypeCancel:
			id, err := wire.DecodeID(payload)
			if err != nil {
				s.protocolFault(err)
				return
			}
			s.cancelRequest(id)
		case wire.TypeQuery, wire.TypeExec:
			req, err := wire.DecodeRequest(payload)
			if err != nil {
				s.protocolFault(err)
				return
			}
			s.enqueue(request{kind: t, req: req})
		default:
			s.protocolFault(fmt.Errorf("unexpected frame type %q", byte(t)))
			return
		}
	}
}

// protocolFault answers a malformed frame; the caller then drops the
// connection, since framing state can no longer be trusted.
func (s *session) protocolFault(err error) {
	_ = s.out.writeError(wire.ErrorMsg{Code: wire.CodeProtocol, Message: err.Error()})
}

// enqueue hands a request to the worker, or answers it directly when the
// session is draining or the pipeline is full.
func (s *session) enqueue(r request) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		_ = s.out.writeError(wire.ErrorMsg{ID: r.req.ID, Code: wire.CodeShutdown,
			Message: "server is shutting down"})
		return
	}
	if s.pending >= pipelineDepth {
		s.mu.Unlock()
		_ = s.out.writeError(wire.ErrorMsg{ID: r.req.ID, Code: wire.CodeBusy,
			Message: fmt.Sprintf("pipeline limit of %d requests reached", pipelineDepth)})
		return
	}
	s.pending++
	s.mu.Unlock()
	// Never blocks: pending (bounded above by pipelineDepth) counts every
	// request between enqueue and its finishRequest, so channel occupancy
	// is strictly below capacity here.
	s.reqs <- r
}

// worker executes requests in arrival order.
func (s *session) worker() {
	for r := range s.reqs {
		s.serve(r)
	}
}

// serve executes one request and writes its response frames. A panic is
// confined to this session: it answers an "internal" error and closes
// the connection, leaving the server and other sessions running.
func (s *session) serve(r request) {
	defer s.finishRequest()
	defer func() {
		if p := recover(); p != nil {
			s.srv.m.panics.Inc()
			s.srv.logf("session %d: panic serving %q: %v", s.id, r.req.SQL, p)
			_ = s.out.writeError(wire.ErrorMsg{ID: r.req.ID, Code: wire.CodeInternal,
				Message: fmt.Sprintf("internal error: %v", p)})
			s.closeConn()
		}
	}()
	if s.isDraining() {
		_ = s.out.writeError(wire.ErrorMsg{ID: r.req.ID, Code: wire.CodeShutdown,
			Message: "server is shutting down"})
		return
	}
	ctx, cancel := s.beginRequest(r.req)
	defer s.endRequest(cancel)

	start := time.Now()
	if hook := s.srv.testExecHook; hook != nil {
		hook(r.req.SQL)
	}
	switch r.kind {
	case wire.TypeQuery:
		rows, err := s.sess.QueryContext(ctx, r.req.SQL)
		if err != nil {
			s.writeFailure(r.req.ID, err)
			return
		}
		if err := s.out.writeRows(r.req.ID, rows); err != nil {
			return // connection-level failure; reader will notice too
		}
	case wire.TypeExec:
		res, err := s.sess.ExecContext(ctx, r.req.SQL)
		if err != nil {
			s.writeFailure(r.req.ID, err)
			return
		}
		if err := s.out.write(wire.TypeComplete,
			wire.AppendComplete(nil, wire.Complete{ID: r.req.ID, Rows: res.RowsAffected}), true); err != nil {
			return
		}
	}
	s.srv.m.queries.Inc()
	s.srv.m.queryNs.ObserveSince(start)
}

// beginRequest publishes the statement as cancellable and derives its
// context: the server's QueryTimeout, tightened — never loosened — by
// the request's own TimeoutMillis.
func (s *session) beginRequest(r wire.Request) (context.Context, context.CancelFunc) {
	timeout := s.srv.opts.QueryTimeout
	if d := time.Duration(r.TimeoutMillis) * time.Millisecond; d > 0 && (timeout == 0 || d < timeout) {
		timeout = d
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), timeout)
	} else {
		ctx, cancel = context.WithCancel(context.Background())
	}
	s.mu.Lock()
	s.curID, s.curCancel = r.ID, cancel
	s.mu.Unlock()
	return ctx, cancel
}

func (s *session) endRequest(cancel context.CancelFunc) {
	s.mu.Lock()
	s.curCancel = nil
	s.mu.Unlock()
	cancel()
}

// finishRequest retires one pending request; during a drain, the last
// answer closes the connection.
func (s *session) finishRequest() {
	s.mu.Lock()
	s.pending--
	closeNow := s.draining && s.pending == 0
	s.mu.Unlock()
	if closeNow {
		s.closeConn()
	}
}

// writeFailure answers a failed statement with a typed error code.
func (s *session) writeFailure(id uint32, err error) {
	code := wire.CodeQuery
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		code = wire.CodeTimeout
	case errors.Is(err, context.Canceled):
		code = wire.CodeCanceled
	}
	_ = s.out.writeError(wire.ErrorMsg{ID: id, Code: code, Message: err.Error()})
}

// cancelRequest interrupts the in-flight statement if it matches id.
func (s *session) cancelRequest(id uint32) {
	s.mu.Lock()
	cancel := s.curCancel
	match := cancel != nil && s.curID == id
	s.mu.Unlock()
	if match {
		cancel()
	}
}

// cancelCurrent interrupts whatever statement is running.
func (s *session) cancelCurrent() {
	s.mu.Lock()
	cancel := s.curCancel
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// beginDrain stops the session admitting requests; if none is pending
// the connection closes now, otherwise the worker closes it after the
// last pending answer.
func (s *session) beginDrain() {
	s.mu.Lock()
	s.draining = true
	idle := s.pending == 0
	s.mu.Unlock()
	if idle {
		s.closeConn()
	}
}

func (s *session) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *session) hasPending() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending > 0
}

// closeConn is safe to call from any goroutine, repeatedly.
func (s *session) closeConn() {
	_ = s.conn.Close()
}

// countReader counts bytes into a metrics counter; n lets the reader
// goroutine (its only caller) distinguish an idle timeout from one that
// interrupted a partial frame.
type countReader struct {
	r io.Reader
	c *metrics.Counter
	n int64
}

func (cr *countReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	cr.c.Add(int64(n))
	return n, err
}

// countWriter counts bytes out beneath the session's bufio.Writer.
type countWriter struct {
	w io.Writer
	c *metrics.Counter
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.c.Add(int64(n))
	return n, err
}

// frameWriter serializes response frames from the worker and the reader
// (Pong, protocol errors) onto one buffered connection.
type frameWriter struct {
	mu      sync.Mutex
	conn    net.Conn
	bw      *bufio.Writer
	timeout time.Duration
}

func newFrameWriter(conn net.Conn, c *metrics.Counter, timeout time.Duration) *frameWriter {
	return &frameWriter{
		conn:    conn,
		bw:      bufio.NewWriter(&countWriter{w: conn, c: c}),
		timeout: timeout,
	}
}

func (w *frameWriter) write(t wire.Type, payload []byte, flush bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := wire.WriteFrame(w.bw, t, payload); err != nil {
		return err
	}
	if flush {
		return w.flushLocked()
	}
	return nil
}

func (w *frameWriter) writeError(e wire.ErrorMsg) error {
	return w.write(wire.TypeError, wire.AppendError(nil, e), true)
}

// rowBatchTarget is the encoded-tuple budget per RowBatch frame: small
// enough to keep first-row latency low, large enough that high-fanout
// scans amortize the frame header and CRC over hundreds of tuples.
const rowBatchTarget = 32 << 10

// writeRows streams a Query answer: RowDescription, the data rows, then
// CommandComplete. Consecutive tuples coalesce into RowBatch frames of
// about rowBatchTarget encoded bytes; a batch that ends up holding a
// single tuple is sent as a plain DataRow, so low-fanout answers look
// exactly as they did before batching existed. Rows are already
// materialized, so holding the write lock here costs encoding time only,
// never executor time.
func (w *frameWriter) writeRows(id uint32, rows *recdb.Rows) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	desc := wire.RowDesc{ID: id, Strategy: rows.Strategy(), Columns: rows.Columns()}
	if err := wire.WriteFrame(w.bw, wire.TypeRowDesc, wire.AppendRowDesc(nil, desc)); err != nil {
		return err
	}
	var n int64
	count := 0
	tuples := make([]byte, 0, 4096)
	scratch := make([]byte, 0, 256)
	flushBatch := func() error {
		if count == 0 {
			return nil
		}
		t := wire.TypeDataRow
		scratch = wire.AppendID(scratch[:0], id)
		if count > 1 {
			t = wire.TypeRowBatch
			scratch = binary.AppendUvarint(scratch, uint64(count))
		}
		scratch = append(scratch, tuples...)
		tuples, count = tuples[:0], 0
		if err := wire.WriteFrame(w.bw, t, scratch); err != nil {
			return err
		}
		if w.bw.Buffered() > 1<<16 {
			return w.flushLocked()
		}
		return nil
	}
	for rows.Next() {
		tuples = types.EncodeRow(tuples, rows.Row())
		count++
		n++
		if len(tuples) >= rowBatchTarget {
			if err := flushBatch(); err != nil {
				return err
			}
		}
	}
	if err := flushBatch(); err != nil {
		return err
	}
	done := wire.AppendComplete(scratch[:0], wire.Complete{ID: id, Rows: n})
	if err := wire.WriteFrame(w.bw, wire.TypeComplete, done); err != nil {
		return err
	}
	return w.flushLocked()
}

func (w *frameWriter) flushLocked() error {
	_ = w.conn.SetWriteDeadline(time.Now().Add(w.timeout))
	return w.bw.Flush()
}
