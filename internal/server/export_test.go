package server

// SetExecHookForTest installs a hook run just before each statement
// executes. Tests use it to inject panics and to hold a statement in
// flight at a chosen moment. Call before Serve.
func SetExecHookForTest(s *Server, hook func(sql string)) {
	s.testExecHook = hook
}
