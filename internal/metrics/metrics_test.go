package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(7)
	g.Add(1)
	h.Observe(42)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil instruments must read zero")
	}
}

func TestNilRegistry(t *testing.T) {
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	r.RegisterFunc("x", func() int64 { return 1 })
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestGetOrCreateReturnsStablePointers(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("Counter must return the same pointer for the same name")
	}
	if r.Gauge("a") != r.Gauge("a") {
		t.Fatal("Gauge must return the same pointer for the same name")
	}
	if r.Histogram("a") != r.Histogram("a") {
		t.Fatal("Histogram must return the same pointer for the same name")
	}
}

func TestCounterGaugeSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.count").Add(3)
	r.Counter("a.count").Inc()
	r.Gauge("lvl").Set(9)
	r.Gauge("lvl").Add(-2)
	r.RegisterFunc("bridged", func() int64 { return 41 })
	s := r.Snapshot()
	if got, ok := s.Get("a.count"); !ok || got != 1 {
		t.Fatalf("a.count = %d, %v; want 1, true", got, ok)
	}
	if got, _ := s.Get("z.count"); got != 3 {
		t.Fatalf("z.count = %d; want 3", got)
	}
	if got, _ := s.Get("bridged"); got != 41 {
		t.Fatalf("bridged = %d; want 41", got)
	}
	if got, _ := s.Get("lvl"); got != 7 {
		t.Fatalf("lvl = %d; want 7", got)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("missing name must not be found")
	}
	// Counters are sorted: a.count < bridged < z.count.
	names := []string{s.Counters[0].Name, s.Counters[1].Name, s.Counters[2].Name}
	if names[0] != "a.count" || names[1] != "bridged" || names[2] != "z.count" {
		t.Fatalf("counters not sorted: %v", names)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	// Bit-length buckets: 0 -> bucket 0 (le 0), 1 -> bucket 1 (le 1),
	// 2..3 -> bucket 2 (le 3), 4..7 -> bucket 3 (le 7), ...
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 1000, -5} {
		h.Observe(v)
	}
	hv := r.Snapshot().Histograms[0]
	if hv.Name != "lat" || hv.Count != 9 {
		t.Fatalf("got name=%q count=%d; want lat, 9", hv.Name, hv.Count)
	}
	// -5 clamps to 0, so sum = 0+1+2+3+4+7+8+1000+0.
	if hv.Sum != 1025 {
		t.Fatalf("sum = %d; want 1025", hv.Sum)
	}
	want := map[int64]int64{0: 2, 1: 1, 3: 2, 7: 2, 15: 1, 1023: 1}
	if len(hv.Buckets) != len(want) {
		t.Fatalf("got %d buckets %v; want %d", len(hv.Buckets), hv.Buckets, len(want))
	}
	for _, b := range hv.Buckets {
		if want[b.Le] != b.Count {
			t.Fatalf("bucket le=%d count=%d; want %d", b.Le, b.Count, want[b.Le])
		}
	}
	if q := hv.Quantile(0); q != 0 {
		t.Fatalf("q0 = %d; want 0", q)
	}
	if q := hv.Quantile(1); q != 1023 {
		t.Fatalf("q1 = %d; want 1023", q)
	}
	if m := hv.Mean(); m < 113 || m > 115 {
		t.Fatalf("mean = %v; want ~113.9", m)
	}
}

func TestHistogramEmptyQuantiles(t *testing.T) {
	var hv HistogramValue
	if hv.Mean() != 0 || hv.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestSnapshotString(t *testing.T) {
	r := NewRegistry()
	r.Counter("bufferpool.hits").Add(12)
	r.Histogram("wal.fsync_ns").Observe(1500)
	out := r.Snapshot().String()
	if !strings.Contains(out, "bufferpool.hits") || !strings.Contains(out, "12") {
		t.Fatalf("missing counter line in:\n%s", out)
	}
	if !strings.Contains(out, "wal.fsync_ns") || !strings.Contains(out, "count=1") {
		t.Fatalf("missing histogram line in:\n%s", out)
	}
}

// TestConcurrentHammer drives 8 goroutines through counters, gauges, and
// histograms while another snapshots continuously. Run under -race this
// pins the registry's concurrency contract; without -race it still checks
// that no update is lost.
func TestConcurrentHammer(t *testing.T) {
	const (
		goroutines = 8
		perG       = 10_000
	)
	r := NewRegistry()
	stop := make(chan struct{})
	var snaps sync.WaitGroup
	snaps.Add(1)
	go func() {
		defer snaps.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := r.Snapshot()
				_ = s.String()
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Half the goroutines create instruments by name mid-flight,
			// half reuse hoisted pointers — both must be race-clean.
			c := r.Counter("hammer.count")
			h := r.Histogram("hammer.lat")
			for i := 0; i < perG; i++ {
				if g%2 == 0 {
					r.Counter("hammer.count").Inc()
					r.Histogram("hammer.lat").Observe(int64(i))
				} else {
					c.Inc()
					h.Observe(int64(i))
				}
				r.Gauge("hammer.level").Set(int64(i))
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	snaps.Wait()
	s := r.Snapshot()
	if got, _ := s.Get("hammer.count"); got != goroutines*perG {
		t.Fatalf("hammer.count = %d; want %d", got, goroutines*perG)
	}
	var hv HistogramValue
	for _, h := range s.Histograms {
		if h.Name == "hammer.lat" {
			hv = h
		}
	}
	if hv.Count != goroutines*perG {
		t.Fatalf("hammer.lat count = %d; want %d", hv.Count, goroutines*perG)
	}
	var inBuckets int64
	for _, b := range hv.Buckets {
		inBuckets += b.Count
	}
	if inBuckets != hv.Count {
		t.Fatalf("bucket sum %d != count %d", inBuckets, hv.Count)
	}
}
