// Package metrics is the engine-wide observability registry: named
// counters, gauges, and bounded latency histograms with lock-free hot
// paths. Instruments are allocated once through a Registry (mutex-guarded
// get-or-create) and then updated with single atomic operations — no
// locks, no allocation — so they can sit on the buffer-pool fetch path,
// the WAL commit path, and operator Next() loops without perturbing the
// measurements they exist to make.
//
// Every instrument method is nil-receiver safe: a subsystem holds plain
// *Counter / *Histogram fields, and when no registry is wired in the
// fields stay nil and every update is a branch-predicted no-op. That is
// what keeps instrumentation compiled-in but near-free when idle.
//
// Histograms use bit-length exponential buckets: an observation v (in
// nanoseconds) lands in bucket bits.Len64(v), whose upper bound is
// 2^k - 1 ns. 65 buckets cover 0ns..2^64-1ns (~584 years), so no
// observation is ever dropped and the whole histogram is a fixed
// 65-slot atomic array. Resolution is a factor of two — coarse, but
// latency regressions worth acting on are rarely finer than 2x, and the
// scheme needs no configuration and no floating point on the hot path.
package metrics

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64. The zero value is ready to
// use; a nil *Counter discards updates.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 level. The zero value is ready to use; a nil
// *Gauge discards updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge's current level.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n (useful for level counters like open cursors).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current level (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is bits.Len64's range: bucket k holds observations v with
// bits.Len64(v) == k, i.e. 2^(k-1) <= v < 2^k (bucket 0 holds v == 0).
const histBuckets = 65

// Histogram records an int64 distribution (by convention nanoseconds for
// latencies, but any non-negative magnitude works — batch sizes, row
// counts). The zero value is ready to use; a nil *Histogram discards
// observations. All methods are safe for concurrent use; Observe is a
// fixed three atomic adds.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value. Negative values are clamped to zero rather
// than dropped, so a histogram's count always matches the number of
// events.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// ObserveSince records the nanoseconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(int64(time.Since(start)))
}

// Bucket is one non-empty histogram bucket in a snapshot.
type Bucket struct {
	// Le is the bucket's inclusive upper bound (2^k - 1).
	Le int64
	// Count is the number of observations in (previous bound, Le].
	Count int64
}

// HistogramValue is a point-in-time copy of one histogram. Because the
// copy is not atomic across buckets, Count can briefly disagree with the
// bucket sum while writers are active; each field is itself a consistent
// atomic load.
type HistogramValue struct {
	Name    string
	Count   int64
	Sum     int64
	Buckets []Bucket
}

// Mean returns the average observation, or 0 when empty.
func (hv HistogramValue) Mean() float64 {
	if hv.Count == 0 {
		return 0
	}
	return float64(hv.Sum) / float64(hv.Count)
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) from
// the bucket boundaries — exact to within the factor-of-two bucket
// resolution.
func (hv HistogramValue) Quantile(q float64) int64 {
	if hv.Count == 0 || len(hv.Buckets) == 0 {
		return 0
	}
	rank := int64(q*float64(hv.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for _, b := range hv.Buckets {
		seen += b.Count
		if seen >= rank {
			return b.Le
		}
	}
	return hv.Buckets[len(hv.Buckets)-1].Le
}

func (h *Histogram) snapshot(name string) HistogramValue {
	hv := HistogramValue{Name: name, Count: h.count.Load(), Sum: h.sum.Load()}
	for k := range h.buckets {
		n := h.buckets[k].Load()
		if n == 0 {
			continue
		}
		le := int64(-1) // bucket 64's bound 2^64-1 overflows int64; -1 marks +Inf
		if k < 64 {
			le = (int64(1) << k) - 1
		}
		hv.Buckets = append(hv.Buckets, Bucket{Le: le, Count: n})
	}
	return hv
}

// Registry is a named collection of instruments. Lookup (get-or-create)
// takes a mutex and should be done once at wiring time; the returned
// pointers are stable for the registry's lifetime and updating them never
// touches the registry again. A nil *Registry returns nil instruments
// from every lookup, which (by the nil-receiver contract above) turns the
// whole subsystem's instrumentation into no-ops.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	funcs      map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		funcs:      make(map[string]func() int64),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use. Returns nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// RegisterFunc bridges an externally owned value (e.g. a storage.Stats
// atomic) into snapshots under name: fn is called at snapshot time and
// its result reported alongside the counters. fn must be safe for
// concurrent use. Re-registering a name replaces the function. No-op on a
// nil registry.
func (r *Registry) RegisterFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Value is one named scalar in a snapshot.
type Value struct {
	Name  string
	Value int64
}

// Snapshot is a point-in-time copy of every instrument, each slice sorted
// by name. Counters includes RegisterFunc bridges.
type Snapshot struct {
	Counters   []Value
	Gauges     []Value
	Histograms []HistogramValue
}

// Snapshot copies every instrument's current value. Safe to call
// concurrently with updates; each scalar is an atomic load. Returns the
// zero Snapshot on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, Value{name, c.Value()})
	}
	for name, fn := range r.funcs {
		s.Counters = append(s.Counters, Value{name, fn()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, Value{name, g.Value()})
	}
	for name, h := range r.histograms {
		s.Histograms = append(s.Histograms, h.snapshot(name))
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Get returns the counter or gauge value under name in the snapshot
// (counters win on a name collision), and whether it was found.
func (s Snapshot) Get(name string) (int64, bool) {
	for _, v := range s.Counters {
		if v.Name == name {
			return v.Value, true
		}
	}
	for _, v := range s.Gauges {
		if v.Name == name {
			return v.Value, true
		}
	}
	return 0, false
}

// String renders the snapshot as aligned text, one instrument per line —
// the format behind recdb-cli's \metrics command.
func (s Snapshot) String() string {
	var b strings.Builder
	width := 0
	for _, v := range s.Counters {
		if len(v.Name) > width {
			width = len(v.Name)
		}
	}
	for _, v := range s.Gauges {
		if len(v.Name) > width {
			width = len(v.Name)
		}
	}
	for _, h := range s.Histograms {
		if len(h.Name) > width {
			width = len(h.Name)
		}
	}
	for _, v := range s.Counters {
		fmt.Fprintf(&b, "%-*s  %d\n", width, v.Name, v.Value)
	}
	for _, v := range s.Gauges {
		fmt.Fprintf(&b, "%-*s  %d\n", width, v.Name, v.Value)
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(&b, "%-*s  count=%d mean=%s p50=%s p99=%s max<=%s\n",
			width, h.Name, h.Count,
			fmtNanos(int64(h.Mean())), fmtNanos(h.Quantile(0.50)),
			fmtNanos(h.Quantile(0.99)), fmtNanos(maxBound(h)))
	}
	return b.String()
}

func maxBound(h HistogramValue) int64 {
	if len(h.Buckets) == 0 {
		return 0
	}
	return h.Buckets[len(h.Buckets)-1].Le
}

// fmtNanos renders a nanosecond magnitude as a duration; -1 (the +Inf
// bucket marker) renders as "inf".
func fmtNanos(v int64) string {
	if v < 0 {
		return "inf"
	}
	return time.Duration(v).String()
}
