package sql

import (
	"strings"
	"testing"
	"testing/quick"

	"recdb/internal/types"
)

func mustParse(t *testing.T, input string) Statement {
	t.Helper()
	stmt, err := Parse(input)
	if err != nil {
		t.Fatalf("Parse(%q): %v", input, err)
	}
	return stmt
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT r.uid, 'it''s', 3.5e2 -- comment\nFROM t WHERE a >= 10;")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.Kind == TokEOF {
			break
		}
		texts = append(texts, tk.Text)
	}
	want := []string{"SELECT", "r", ".", "uid", ",", "it's", ",", "3.5e2", "FROM", "t", "WHERE", "a", ">=", "10", ";"}
	if strings.Join(texts, "|") != strings.Join(want, "|") {
		t.Fatalf("got %v", texts)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("'unterminated"); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := Lex("a @ b"); err == nil {
		t.Error("bad character should fail")
	}
	if _, err := Lex(`"unterminated ident`); err == nil {
		t.Error("unterminated quoted identifier should fail")
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a\n  bb")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Fatalf("bb at line %d col %d", toks[1].Line, toks[1].Col)
	}
}

func TestParseCreateTable(t *testing.T) {
	ct := mustParse(t, `CREATE TABLE users (uid INT PRIMARY KEY, name TEXT, age INT, loc GEOMETRY)`).(*CreateTable)
	if ct.Name != "users" || len(ct.Cols) != 4 {
		t.Fatalf("%+v", ct)
	}
	if !ct.Cols[0].PrimaryKey || ct.Cols[0].TypeName != "INT" {
		t.Fatalf("pk col: %+v", ct.Cols[0])
	}
	if ct.Cols[3].TypeName != "GEOMETRY" {
		t.Fatalf("geom col: %+v", ct.Cols[3])
	}
	ct2 := mustParse(t, `CREATE TABLE IF NOT EXISTS t (a INT)`).(*CreateTable)
	if !ct2.IfNotExists {
		t.Fatal("IF NOT EXISTS not parsed")
	}
}

func TestParseDrop(t *testing.T) {
	d := mustParse(t, "DROP TABLE movies").(*DropTable)
	if d.Name != "movies" || d.IfExists {
		t.Fatalf("%+v", d)
	}
	d2 := mustParse(t, "DROP TABLE IF EXISTS movies").(*DropTable)
	if !d2.IfExists {
		t.Fatal("IF EXISTS not parsed")
	}
	r := mustParse(t, "DROP RECOMMENDER GeneralRec").(*DropRecommender)
	if r.Name != "GeneralRec" {
		t.Fatalf("%+v", r)
	}
}

func TestParseInsert(t *testing.T) {
	ins := mustParse(t, `INSERT INTO ratings (uid, iid, ratingval) VALUES (1, 2, 4.5), (2, 1, 3)`).(*Insert)
	if ins.Table != "ratings" || len(ins.Cols) != 3 || len(ins.Rows) != 2 {
		t.Fatalf("%+v", ins)
	}
	lit := ins.Rows[0][2].(*Literal)
	if lit.Value.Kind() != types.KindFloat || lit.Value.Float() != 4.5 {
		t.Fatalf("literal: %v", lit.Value)
	}
	ins2 := mustParse(t, `INSERT INTO t VALUES ('x', -5, NULL, TRUE)`).(*Insert)
	if len(ins2.Cols) != 0 || len(ins2.Rows[0]) != 4 {
		t.Fatalf("%+v", ins2)
	}
	if v := ins2.Rows[0][1].(*Literal).Value; v.Int() != -5 {
		t.Fatalf("negative literal: %v", v)
	}
}

func TestParseDeleteUpdate(t *testing.T) {
	d := mustParse(t, "DELETE FROM ratings WHERE uid = 3").(*Delete)
	if d.Table != "ratings" || d.Where == nil {
		t.Fatalf("%+v", d)
	}
	u := mustParse(t, "UPDATE ratings SET ratingval = 5, uid = uid + 1 WHERE iid = 2").(*Update)
	if u.Table != "ratings" || len(u.Set) != 2 || u.Where == nil {
		t.Fatalf("%+v", u)
	}
}

func TestParseTransactionControl(t *testing.T) {
	for _, q := range []string{"BEGIN", "BEGIN TRANSACTION", "START TRANSACTION"} {
		if _, ok := mustParse(t, q).(*Begin); !ok {
			t.Fatalf("%q did not parse as Begin", q)
		}
	}
	for _, q := range []string{"COMMIT", "COMMIT TRANSACTION"} {
		if _, ok := mustParse(t, q).(*Commit); !ok {
			t.Fatalf("%q did not parse as Commit", q)
		}
	}
	for _, q := range []string{"ROLLBACK", "ROLLBACK TRANSACTION"} {
		if _, ok := mustParse(t, q).(*Rollback); !ok {
			t.Fatalf("%q did not parse as Rollback", q)
		}
	}
	// START alone is not a statement.
	if _, err := Parse("START"); err == nil {
		t.Fatal("bare START should not parse")
	}
}

func TestParseCreateRecommenderPaperExample(t *testing.T) {
	// Recommender 1 from the paper (note "Item From", singular).
	cr := mustParse(t, `Create Recommender GeneralRec On Ratings
		Users From uid Item From iid Ratings From ratingval
		Using ItemCosCF`).(*CreateRecommender)
	if cr.Name != "GeneralRec" || cr.Table != "Ratings" {
		t.Fatalf("%+v", cr)
	}
	if cr.UserCol != "uid" || cr.ItemCol != "iid" || cr.RatingCol != "ratingval" {
		t.Fatalf("%+v", cr)
	}
	if cr.Algorithm != "ItemCosCF" {
		t.Fatalf("alg: %q", cr.Algorithm)
	}
}

func TestParseCreateRecommenderDefaultAlgorithm(t *testing.T) {
	cr := mustParse(t, `CREATE RECOMMENDER r ON ratings USERS FROM u ITEMS FROM i RATINGS FROM v`).(*CreateRecommender)
	if cr.Algorithm != "" {
		t.Fatalf("alg should be empty, got %q", cr.Algorithm)
	}
	if cr.Workers != 0 {
		t.Fatalf("workers should default to 0, got %d", cr.Workers)
	}
}

func TestParseCreateRecommenderWithWorkers(t *testing.T) {
	cr := mustParse(t, `CREATE RECOMMENDER r ON ratings
		USERS FROM u ITEMS FROM i RATINGS FROM v
		USING SVD WITH WORKERS 4`).(*CreateRecommender)
	if cr.Algorithm != "SVD" || cr.Workers != 4 {
		t.Fatalf("%+v", cr)
	}
	// WITH WORKERS without USING is also valid.
	cr = mustParse(t, `CREATE RECOMMENDER r ON ratings
		USERS FROM u ITEMS FROM i RATINGS FROM v WITH WORKERS 2`).(*CreateRecommender)
	if cr.Algorithm != "" || cr.Workers != 2 {
		t.Fatalf("%+v", cr)
	}
	for _, bad := range []string{
		`CREATE RECOMMENDER r ON ratings USERS FROM u ITEMS FROM i RATINGS FROM v WITH WORKERS 0`,
		`CREATE RECOMMENDER r ON ratings USERS FROM u ITEMS FROM i RATINGS FROM v WITH WORKERS many`,
		`CREATE RECOMMENDER r ON ratings USERS FROM u ITEMS FROM i RATINGS FROM v WITH 4`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("expected parse error for %q", bad)
		}
	}
}

func TestParseQuery1Paper(t *testing.T) {
	// Query 1 from the paper.
	s := mustParse(t, `Select R.uid, R.iid, R.ratingval From Ratings as R
		Recommend R.iid To R.uid On R.ratingVal Using ItemCosCF
		Where R.uid=1
		Order By R.ratingVal Desc Limit 10`).(*Select)
	if len(s.Items) != 3 || len(s.From) != 1 {
		t.Fatalf("%+v", s)
	}
	if s.From[0].Table != "Ratings" || s.From[0].Alias != "R" {
		t.Fatalf("from: %+v", s.From[0])
	}
	if s.Recommend == nil {
		t.Fatal("RECOMMEND clause missing")
	}
	if s.Recommend.Item.String() != "R.iid" || s.Recommend.User.String() != "R.uid" {
		t.Fatalf("recommend: %+v", s.Recommend)
	}
	if !EqualFold(s.Recommend.Algorithm, "ItemCosCF") {
		t.Fatalf("alg: %q", s.Recommend.Algorithm)
	}
	if s.Where == nil || len(s.OrderBy) != 1 || !s.OrderBy[0].Desc || s.Limit == nil {
		t.Fatalf("tail clauses: %+v", s)
	}
}

func TestParseQuery3SelectionIn(t *testing.T) {
	s := mustParse(t, `Select R.iid, R.ratingval From Ratings as R
		Recommend R.iid To R.uid On R.ratingval Using ItemCosCF
		Where R.uid=1 And R.iid In (1,2,3,4,5)`).(*Select)
	b := s.Where.(*Binary)
	if b.Op != OpAnd {
		t.Fatalf("where: %+v", s.Where)
	}
	in := b.R.(*In)
	if len(in.List) != 5 || in.Negate {
		t.Fatalf("in: %+v", in)
	}
}

func TestParseQuery4Join(t *testing.T) {
	s := mustParse(t, `Select R.uid, M.name, R.ratingval From Ratings as R, Movies as M
		Recommend R.iid To R.uid On R.ratingval Using ItemCosCF
		Where R.uid=1 And M.iid = R.iid And M.genre='Action'`).(*Select)
	if len(s.From) != 2 || s.From[1].Alias != "M" {
		t.Fatalf("from: %+v", s.From)
	}
}

func TestParseQuery6SpatialFunctions(t *testing.T) {
	s := mustParse(t, `Select H.name, R.ratingval
		From HotelRatings as R, Hotels as H, City as C
		Recommend R.iid To R.uid On R.ratingVal Using ItemCosCF
		Where R.uid=1 AND R.iid=H.vid AND C.name = 'San Diego'
		AND ST_Contains(C.geom, H.geom)`).(*Select)
	if len(s.From) != 3 {
		t.Fatalf("from: %+v", s.From)
	}
	// Find the ST_Contains call in the AND chain.
	var found bool
	var walk func(e Expr)
	walk = func(e Expr) {
		switch v := e.(type) {
		case *Binary:
			walk(v.L)
			walk(v.R)
		case *Call:
			if EqualFold(v.Name, "ST_Contains") && len(v.Args) == 2 {
				found = true
			}
		}
	}
	walk(s.Where)
	if !found {
		t.Fatal("ST_Contains call not found in WHERE")
	}
}

func TestParseQuery8OrderByFunction(t *testing.T) {
	s := mustParse(t, `Select V.name, V.address From Ratings as R, Restaurants as V
		Recommend R.iid To R.uid On R.ratingVal Using UserPearCF
		Where R.uid=1 AND R.iid=V.vid
		Order By CScore(R.ratingVal, ST_Distance(V.geom, ULoc(0))) Desc Limit 3`).(*Select)
	call, ok := s.OrderBy[0].Expr.(*Call)
	if !ok || !EqualFold(call.Name, "CScore") || len(call.Args) != 2 {
		t.Fatalf("order by: %+v", s.OrderBy[0].Expr)
	}
}

func TestParseStar(t *testing.T) {
	s := mustParse(t, "SELECT * FROM t").(*Select)
	if !s.Items[0].Star {
		t.Fatal("star not parsed")
	}
}

func TestParseAliases(t *testing.T) {
	s := mustParse(t, "SELECT a + 1 AS total, b bee FROM t x WHERE b = 1").(*Select)
	if s.Items[0].Alias != "total" || s.Items[1].Alias != "bee" {
		t.Fatalf("aliases: %+v", s.Items)
	}
	if s.From[0].Alias != "x" {
		t.Fatalf("table alias: %+v", s.From[0])
	}
}

func TestParsePrecedence(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3").(*Select)
	or := s.Where.(*Binary)
	if or.Op != OpOr {
		t.Fatalf("top op: %v", or.Op)
	}
	and := or.R.(*Binary)
	if and.Op != OpAnd {
		t.Fatalf("right op: %v", and.Op)
	}
	s2 := mustParse(t, "SELECT a FROM t WHERE a + b * c = 7").(*Select)
	eq := s2.Where.(*Binary)
	add := eq.L.(*Binary)
	if add.Op != OpAdd {
		t.Fatalf("add: %v", add.Op)
	}
	if add.R.(*Binary).Op != OpMul {
		t.Fatal("mul should bind tighter than add")
	}
}

func TestParseNotAndIsNull(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t WHERE NOT a = 1 AND b IS NOT NULL AND c IS NULL AND d NOT IN (1,2)").(*Select)
	if s.Where == nil {
		t.Fatal("where missing")
	}
	var nulls, notNulls, notIns int
	var walk func(e Expr)
	walk = func(e Expr) {
		switch v := e.(type) {
		case *Binary:
			walk(v.L)
			walk(v.R)
		case *IsNull:
			if v.Negate {
				notNulls++
			} else {
				nulls++
			}
		case *In:
			if v.Negate {
				notIns++
			}
		case *Unary:
			walk(v.X)
		}
	}
	walk(s.Where)
	if nulls != 1 || notNulls != 1 || notIns != 1 {
		t.Fatalf("nulls=%d notNulls=%d notIns=%d", nulls, notNulls, notIns)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "SELECT", "SELECT a", "SELECT a FROM", "CREATE", "CREATE VIEW v",
		"INSERT INTO t", "CREATE TABLE t ()", "SELECT a FROM t WHERE",
		"CREATE RECOMMENDER r ON t USERS FROM", "SELECT a FROM t GARBAGE trailing",
		"SELECT a FROM t LIMIT", "DELETE", "UPDATE t", "SELECT a FROM t WHERE a IN ()",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q): expected error", q)
		}
	}
}

func TestParseAll(t *testing.T) {
	stmts, err := ParseAll(`
		CREATE TABLE t (a INT);
		INSERT INTO t VALUES (1);
		SELECT a FROM t;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements", len(stmts))
	}
	if _, err := ParseAll("SELECT a FROM t SELECT b FROM u"); err == nil {
		t.Error("missing semicolon should fail")
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	mustParse(t, "select a from t where a = 1 order by a desc limit 5")
	mustParse(t, "SELECT a FROM t WHERE a = 1 ORDER BY a DESC LIMIT 5")
}

func TestBinaryOpString(t *testing.T) {
	ops := map[BinaryOp]string{
		OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
		OpAnd: "AND", OpOr: "OR", OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
	}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%v.String() = %q", int(op), op.String())
		}
	}
}

func TestParseLikeBetween(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t WHERE name LIKE 'Act%' AND a BETWEEN 1 AND 10 AND b NOT LIKE '_x' AND c NOT BETWEEN 2 AND 3").(*Select)
	var likes, notLikes, betweens, notBetweens int
	var walk func(e Expr)
	walk = func(e Expr) {
		switch v := e.(type) {
		case *Binary:
			walk(v.L)
			walk(v.R)
		case *Like:
			if v.Negate {
				notLikes++
			} else {
				likes++
			}
		case *Between:
			if v.Negate {
				notBetweens++
			} else {
				betweens++
			}
		}
	}
	walk(s.Where)
	if likes != 1 || notLikes != 1 || betweens != 1 || notBetweens != 1 {
		t.Fatalf("likes=%d notLikes=%d betweens=%d notBetweens=%d", likes, notLikes, betweens, notBetweens)
	}
}

func TestParseGroupByHavingDistinct(t *testing.T) {
	s := mustParse(t, `SELECT DISTINCT genre, COUNT(*) FROM movies
		GROUP BY genre, director HAVING COUNT(*) > 2 ORDER BY genre`).(*Select)
	if !s.Distinct || len(s.GroupBy) != 2 || s.Having == nil {
		t.Fatalf("%+v", s)
	}
	call := s.Items[1].Expr.(*Call)
	if len(call.Args) != 1 {
		t.Fatalf("count args: %v", call.Args)
	}
	if _, ok := call.Args[0].(*Star); !ok {
		t.Fatalf("COUNT(*) star arg: %T", call.Args[0])
	}
}

func TestParseExplain(t *testing.T) {
	e := mustParse(t, "EXPLAIN SELECT a FROM t WHERE a = 1").(*Explain)
	if e.Query == nil || e.Query.Where == nil {
		t.Fatalf("%+v", e)
	}
	if _, err := Parse("EXPLAIN INSERT INTO t VALUES (1)"); err == nil {
		t.Fatal("EXPLAIN of non-SELECT should fail")
	}
}

func TestExprStringCanonical(t *testing.T) {
	// Same expression with different case renders identically.
	a := mustParse(t, "SELECT x FROM t WHERE Genre = 'A' AND val BETWEEN 1 AND 2").(*Select).Where
	b := mustParse(t, "SELECT x FROM t WHERE genre = 'A' AND VAL BETWEEN 1 AND 2").(*Select).Where
	if ExprString(a) != ExprString(b) {
		t.Fatalf("canonical mismatch:\n%s\n%s", ExprString(a), ExprString(b))
	}
	// Rendering is parseable-ish and distinctive.
	exprs := []string{
		"a + b * c = 7",
		"ST_DWithin(g, ST_Point(1, 2), 5)",
		"name LIKE 'x%'",
		"a IN (1, 2, 3)",
		"x IS NOT NULL",
		"NOT (a = 1 OR b = 2)",
		"COUNT(*) > 2",
		"s = 'it''s'",
	}
	seen := map[string]string{}
	for _, e := range exprs {
		w := mustParse(t, "SELECT x FROM t WHERE "+e).(*Select).Where
		r := ExprString(w)
		if prev, dup := seen[r]; dup {
			t.Fatalf("collision: %q and %q both render %q", prev, e, r)
		}
		seen[r] = e
	}
}

func TestExprStringStableUnderReparse(t *testing.T) {
	// Render → parse → render is a fixed point for WHERE expressions.
	inputs := []string{
		"(a + b) * c = 7",
		"a BETWEEN 1 AND 2 AND s LIKE '%x_'",
		"ABS(a - b) >= 2.5",
		"g IS NULL OR a IN (1, 2)",
	}
	for _, in := range inputs {
		w1 := mustParse(t, "SELECT x FROM t WHERE "+in).(*Select).Where
		r1 := ExprString(w1)
		w2 := mustParse(t, "SELECT x FROM t WHERE "+r1).(*Select).Where
		r2 := ExprString(w2)
		if r1 != r2 {
			t.Fatalf("not a fixed point:\n%q\n%q", r1, r2)
		}
	}
}

func TestParseNeverPanics(t *testing.T) {
	// Parser robustness: arbitrary inputs must return errors, not panic.
	f := func(s string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %q: %v", s, r)
			}
		}()
		_, _ = Parse(s)
		_, _ = ParseAll(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// Adversarial fragments around every keyword.
	fragments := []string{
		"SELECT", "FROM", "WHERE", "RECOMMEND", "TO", "ON", "USING",
		"GROUP BY", "HAVING", "ORDER BY", "LIMIT", "OFFSET", "IN", "LIKE",
		"BETWEEN", "AND", "OR", "NOT", "(", ")", ",", ".", "'", "1", "1.5",
		"*", "=", "<=",
	}
	rng := uint64(42)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1
		return int(rng>>33) % n
	}
	for trial := 0; trial < 3000; trial++ {
		var sb strings.Builder
		for i := 0; i < 1+next(12); i++ {
			sb.WriteString(fragments[next(len(fragments))])
			sb.WriteByte(' ')
		}
		input := sb.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", input, r)
				}
			}()
			_, _ = Parse(input)
		}()
	}
}

func TestParseScriptSourceText(t *testing.T) {
	script := `
		CREATE TABLE t (a INT PRIMARY KEY);

		INSERT INTO t VALUES (1),
			(2);
		SELECT * FROM t`
	out, err := ParseScript(script)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("statements: %d", len(out))
	}
	if out[0].Text != "CREATE TABLE t (a INT PRIMARY KEY)" {
		t.Fatalf("stmt 0 text = %q", out[0].Text)
	}
	// Multi-line statements keep their interior layout, lose only the
	// surrounding whitespace and semicolon.
	if !strings.HasPrefix(out[1].Text, "INSERT INTO t VALUES (1),") ||
		!strings.HasSuffix(out[1].Text, "(2)") {
		t.Fatalf("stmt 1 text = %q", out[1].Text)
	}
	if out[2].Text != "SELECT * FROM t" {
		t.Fatalf("stmt 2 text = %q", out[2].Text)
	}
	// Each slice reparses to the same statement kind.
	for i, s := range out {
		if _, err := Parse(s.Text); err != nil {
			t.Fatalf("stmt %d text %q does not reparse: %v", i, s.Text, err)
		}
	}
}
