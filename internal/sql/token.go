// Package sql implements the lexer, AST, and recursive-descent parser for
// the engine's SQL dialect, including the paper's extensions: the
// CREATE/DROP RECOMMENDER statements (§III-A) and the RECOMMEND ... TO ...
// ON ... USING ... clause in SELECT (§III-B).
package sql

import "fmt"

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokString
	TokSymbol // punctuation and operators: ( ) , . * = != <> < <= > >= + - / ;
)

// Token is one lexical token with its source position (1-based).
type Token struct {
	Kind TokenKind
	Text string // raw text; for TokString, the unquoted value
	Pos  int    // byte offset in the input
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokString:
		return fmt.Sprintf("'%s'", t.Text)
	default:
		return t.Text
	}
}

// ParseError is a syntax error with position information.
type ParseError struct {
	Msg  string
	Line int
	Col  int
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("sql: syntax error at line %d, column %d: %s", e.Line, e.Col, e.Msg)
}
