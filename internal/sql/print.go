package sql

import (
	"strings"

	"recdb/internal/types"
)

// ExprString renders an expression in a canonical textual form. The
// planner uses it to match GROUP BY expressions against select-list and
// HAVING occurrences, so the rendering must be deterministic; it is also
// human-readable for EXPLAIN output.
func ExprString(e Expr) string {
	var sb strings.Builder
	printExpr(&sb, e)
	return sb.String()
}

func printExpr(sb *strings.Builder, e Expr) {
	switch v := e.(type) {
	case *Literal:
		if v.Value.Kind() == types.KindText {
			sb.WriteByte('\'')
			sb.WriteString(strings.ReplaceAll(v.Value.Text(), "'", "''"))
			sb.WriteByte('\'')
		} else {
			sb.WriteString(v.Value.String())
		}
	case *ColumnRef:
		sb.WriteString(strings.ToLower(v.String()))
	case *Binary:
		sb.WriteByte('(')
		printExpr(sb, v.L)
		sb.WriteByte(' ')
		sb.WriteString(v.Op.String())
		sb.WriteByte(' ')
		printExpr(sb, v.R)
		sb.WriteByte(')')
	case *Unary:
		sb.WriteString(v.Op)
		sb.WriteByte('(')
		printExpr(sb, v.X)
		sb.WriteByte(')')
	case *In:
		sb.WriteByte('(')
		printExpr(sb, v.X)
		if v.Negate {
			sb.WriteString(" NOT")
		}
		sb.WriteString(" IN (")
		for i, item := range v.List {
			if i > 0 {
				sb.WriteString(", ")
			}
			printExpr(sb, item)
		}
		sb.WriteString("))")
	case *Call:
		sb.WriteString(strings.ToLower(v.Name))
		sb.WriteByte('(')
		for i, a := range v.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			printExpr(sb, a)
		}
		sb.WriteByte(')')
	case *IsNull:
		sb.WriteByte('(')
		printExpr(sb, v.X)
		if v.Negate {
			sb.WriteString(" IS NOT NULL)")
		} else {
			sb.WriteString(" IS NULL)")
		}
	case *Like:
		sb.WriteByte('(')
		printExpr(sb, v.X)
		if v.Negate {
			sb.WriteString(" NOT")
		}
		sb.WriteString(" LIKE ")
		printExpr(sb, v.Pattern)
		sb.WriteByte(')')
	case *Between:
		sb.WriteByte('(')
		printExpr(sb, v.X)
		if v.Negate {
			sb.WriteString(" NOT")
		}
		sb.WriteString(" BETWEEN ")
		printExpr(sb, v.Lo)
		sb.WriteString(" AND ")
		printExpr(sb, v.Hi)
		sb.WriteByte(')')
	case *Star:
		sb.WriteByte('*')
	default:
		sb.WriteString("?expr?")
	}
}
