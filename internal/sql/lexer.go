package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// Lex splits input into tokens. Identifiers keep their original case (the
// parser compares keywords case-insensitively). Strings use single quotes
// with ” as the escape for a literal quote. Line comments start with --.
func Lex(input string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	n := len(input)
	advance := func(k int) {
		for j := 0; j < k; j++ {
			if input[i+j] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += k
	}
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '-' && i+1 < n && input[i+1] == '-':
			for i < n && input[i] != '\n' {
				advance(1)
			}
		case isIdentStart(rune(c)):
			start, sl, sc := i, line, col
			for i < n && isIdentPart(rune(input[i])) {
				advance(1)
			}
			toks = append(toks, Token{Kind: TokIdent, Text: input[start:i], Pos: start, Line: sl, Col: sc})
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9'):
			start, sl, sc := i, line, col
			seenDot, seenExp := false, false
			for i < n {
				ch := input[i]
				if ch >= '0' && ch <= '9' {
					advance(1)
				} else if ch == '.' && !seenDot && !seenExp {
					seenDot = true
					advance(1)
				} else if (ch == 'e' || ch == 'E') && !seenExp && i+1 < n &&
					(input[i+1] >= '0' && input[i+1] <= '9' || input[i+1] == '+' || input[i+1] == '-') {
					seenExp = true
					advance(2)
				} else {
					break
				}
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: start, Line: sl, Col: sc})
		case c == '\'':
			start, sl, sc := i, line, col
			advance(1)
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' {
						sb.WriteByte('\'')
						advance(2)
						continue
					}
					advance(1)
					closed = true
					break
				}
				sb.WriteByte(input[i])
				advance(1)
			}
			if !closed {
				return nil, &ParseError{Msg: "unterminated string literal", Line: sl, Col: sc}
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start, Line: sl, Col: sc})
		case c == '"':
			// Double-quoted identifier.
			start, sl, sc := i, line, col
			advance(1)
			j := strings.IndexByte(input[i:], '"')
			if j < 0 {
				return nil, &ParseError{Msg: "unterminated quoted identifier", Line: sl, Col: sc}
			}
			text := input[i : i+j]
			advance(j + 1)
			toks = append(toks, Token{Kind: TokIdent, Text: text, Pos: start, Line: sl, Col: sc})
		default:
			start, sl, sc := i, line, col
			var sym string
			switch {
			case strings.HasPrefix(input[i:], "<="), strings.HasPrefix(input[i:], ">="),
				strings.HasPrefix(input[i:], "<>"), strings.HasPrefix(input[i:], "!="):
				sym = input[i : i+2]
			case strings.ContainsRune("()*,.=<>+-/;", rune(c)):
				sym = string(c)
			default:
				return nil, &ParseError{Msg: fmt.Sprintf("unexpected character %q", c), Line: sl, Col: sc}
			}
			advance(len(sym))
			toks = append(toks, Token{Kind: TokSymbol, Text: sym, Pos: start, Line: sl, Col: sc})
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n, Line: line, Col: col})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
