package sql

import (
	"strings"

	"recdb/internal/types"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// Expr is any parsed scalar expression.
type Expr interface{ expr() }

// ---- Statements ----

// CreateTable is CREATE TABLE name (col type, ...).
type CreateTable struct {
	Name        string
	Cols        []ColumnDef
	IfNotExists bool
}

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name       string
	TypeName   string
	PrimaryKey bool
}

// DropTable is DROP TABLE name.
type DropTable struct {
	Name     string
	IfExists bool
}

// CreateIndex is CREATE INDEX name ON table (col).
type CreateIndex struct {
	Name   string
	Table  string
	Column string
}

// Insert is INSERT INTO table [(cols)] VALUES (...), (...).
type Insert struct {
	Table string
	Cols  []string
	Rows  [][]Expr
}

// Delete is DELETE FROM table [WHERE expr].
type Delete struct {
	Table string
	Where Expr
}

// Update is UPDATE table SET col=expr, ... [WHERE expr].
type Update struct {
	Table string
	Set   []Assignment
	Where Expr
}

// Assignment is one SET clause item.
type Assignment struct {
	Column string
	Value  Expr
}

// CreateRecommender is the paper's CREATE RECOMMENDER statement (§III-A):
//
//	CREATE RECOMMENDER name ON ratings
//	USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval
//	USING ItemCosCF [WITH WORKERS 4]
type CreateRecommender struct {
	Name      string
	Table     string
	UserCol   string
	ItemCol   string
	RatingCol string
	Algorithm string // empty means the default (ItemCosCF)
	Workers   int    // WITH WORKERS n; 0 means the engine default
}

// DropRecommender is DROP RECOMMENDER name.
type DropRecommender struct {
	Name     string
	IfExists bool
}

// Begin is BEGIN [TRANSACTION] / START TRANSACTION: it opens an explicit
// multi-statement transaction whose writes become durable and visible to
// recovery only at COMMIT.
type Begin struct{}

// Commit is COMMIT [TRANSACTION]: it atomically makes every write of the
// open transaction durable.
type Commit struct{}

// Rollback is ROLLBACK [TRANSACTION]: it undoes every write of the open
// transaction.
type Rollback struct{}

// Select is a SELECT query, optionally carrying the RECOMMEND clause.
type Select struct {
	Distinct  bool
	Items     []SelectItem
	From      []TableRef
	Recommend *RecommendClause
	Where     Expr
	GroupBy   []Expr
	Having    Expr
	OrderBy   []OrderItem
	Limit     Expr // nil when absent
	Offset    Expr // nil when absent
}

// Explain wraps a query whose plan should be described instead of run.
// With Analyze set (EXPLAIN ANALYZE), the query is also executed and the
// plan is annotated with actual per-operator row counts, loops, wall
// time, and buffer-pool statistics.
type Explain struct {
	Query   *Select
	Analyze bool
}

// SelectItem is one projection: expression plus optional alias, or star.
type SelectItem struct {
	Star  bool   // SELECT *
	Expr  Expr   // nil when Star
	Alias string // optional AS alias
}

// TableRef is one FROM entry: a table with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// Name returns the name the table is visible under (alias or table name).
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// RecommendClause is RECOMMEND item TO user ON rating USING alg (§III-B).
// The three references name columns of the ratings table in FROM.
type RecommendClause struct {
	Item      *ColumnRef
	User      *ColumnRef
	Rating    *ColumnRef
	Algorithm string
}

// OrderItem is one ORDER BY entry.
type OrderItem struct {
	Expr Expr
	Desc bool
}

func (*CreateTable) stmt()       {}
func (*Explain) stmt()           {}
func (*DropTable) stmt()         {}
func (*CreateIndex) stmt()       {}
func (*Insert) stmt()            {}
func (*Delete) stmt()            {}
func (*Update) stmt()            {}
func (*CreateRecommender) stmt() {}
func (*DropRecommender) stmt()   {}
func (*Select) stmt()            {}
func (*Begin) stmt()             {}
func (*Commit) stmt()            {}
func (*Rollback) stmt()          {}

// ---- Expressions ----

// Literal is a constant value.
type Literal struct {
	Value types.Value
}

// ColumnRef is a possibly-qualified column reference (r.uid or uid).
type ColumnRef struct {
	Qualifier string
	Name      string
}

// String renders the reference as written.
func (c *ColumnRef) String() string {
	if c.Qualifier == "" {
		return c.Name
	}
	return c.Qualifier + "." + c.Name
}

// BinaryOp identifies a binary operator.
type BinaryOp int

// Binary operators.
const (
	OpEq BinaryOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpAdd
	OpSub
	OpMul
	OpDiv
)

// String returns the SQL spelling of the operator.
func (op BinaryOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	}
	return "?"
}

// Binary is a binary expression.
type Binary struct {
	Op   BinaryOp
	L, R Expr
}

// Unary is NOT expr or - expr.
type Unary struct {
	Op string // "NOT" or "-"
	X  Expr
}

// In is expr IN (e1, e2, ...) or expr NOT IN (...).
type In struct {
	X      Expr
	List   []Expr
	Negate bool
}

// Call is a function call: name(args...).
type Call struct {
	Name string
	Args []Expr
}

// IsNull is expr IS [NOT] NULL.
type IsNull struct {
	X      Expr
	Negate bool
}

// Like is expr [NOT] LIKE pattern ('%' any run, '_' one character).
type Like struct {
	X       Expr
	Pattern Expr
	Negate  bool
}

// Between is expr [NOT] BETWEEN lo AND hi (inclusive).
type Between struct {
	X      Expr
	Lo, Hi Expr
	Negate bool
}

// Star is the * argument of COUNT(*).
type Star struct{}

func (*Literal) expr()   {}
func (*ColumnRef) expr() {}
func (*Binary) expr()    {}
func (*Unary) expr()     {}
func (*In) expr()        {}
func (*Call) expr()      {}
func (*IsNull) expr()    {}
func (*Star) expr()      {}
func (*Like) expr()      {}
func (*Between) expr()   {}

// EqualFold compares SQL identifiers case-insensitively.
func EqualFold(a, b string) bool { return strings.EqualFold(a, b) }
