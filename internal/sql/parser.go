package sql

import (
	"fmt"
	"strconv"
	"strings"

	"recdb/internal/types"
)

// Parse parses a single SQL statement (an optional trailing semicolon is
// allowed).
func Parse(input string) (Statement, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(";")
	if !p.atEOF() {
		return nil, p.errorf("unexpected %s after statement", p.peek())
	}
	return stmt, nil
}

// ParseAll parses a semicolon-separated script into statements.
func ParseAll(input string) ([]Statement, error) {
	script, err := ParseScript(input)
	if err != nil {
		return nil, err
	}
	out := make([]Statement, len(script))
	for i, s := range script {
		out[i] = s.Stmt
	}
	return out, nil
}

// ScriptStmt pairs a parsed statement with its exact source text (no
// trailing semicolon), so callers that persist statements — the
// write-ahead log — can record what was executed verbatim.
type ScriptStmt struct {
	Stmt Statement
	Text string
}

// ParseScript parses a semicolon-separated script like ParseAll and also
// slices out each statement's source text by token offsets.
func ParseScript(input string) ([]ScriptStmt, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []ScriptStmt
	for {
		for p.accept(";") {
		}
		if p.atEOF() {
			return out, nil
		}
		start := p.peek().Pos
		stmt, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		// The statement's text ends where the next token (the semicolon or
		// EOF) begins.
		end := p.peek().Pos
		if end > len(input) {
			end = len(input)
		}
		out = append(out, ScriptStmt{Stmt: stmt, Text: strings.TrimSpace(input[start:end])})
		if !p.accept(";") && !p.atEOF() {
			return nil, p.errorf("expected ';' between statements, got %s", p.peek())
		}
	}
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.peek().Kind == TokEOF }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errorf(format string, args ...any) error {
	t := p.peek()
	return &ParseError{Msg: fmt.Sprintf(format, args...), Line: t.Line, Col: t.Col}
}

// accept consumes the next token when it matches word (a keyword, matched
// case-insensitively against identifiers, or a symbol).
func (p *parser) accept(word string) bool {
	t := p.peek()
	switch t.Kind {
	case TokIdent:
		if strings.EqualFold(t.Text, word) {
			p.pos++
			return true
		}
	case TokSymbol:
		if t.Text == word {
			p.pos++
			return true
		}
	}
	return false
}

func (p *parser) expect(word string) error {
	if !p.accept(word) {
		return p.errorf("expected %q, got %s", word, p.peek())
	}
	return nil
}

func (p *parser) peekIs(word string) bool {
	t := p.peek()
	return (t.Kind == TokIdent && strings.EqualFold(t.Text, word)) ||
		(t.Kind == TokSymbol && t.Text == word)
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		return "", p.errorf("expected identifier, got %s", t)
	}
	p.pos++
	return t.Text, nil
}

var reservedAliasWords = map[string]bool{
	"where": true, "recommend": true, "order": true, "limit": true,
	"group": true, "having": true, "on": true, "using": true, "set": true,
	"from": true, "to": true, "and": true, "or": true, "not": true,
	"inner": true, "join": true, "values": true, "as": true, "asc": true,
	"desc": true, "in": true, "is": true, "like": true, "between": true, "offset": true, "select": true, "distinct": true, "explain": true,
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.accept("CREATE"):
		switch {
		case p.accept("TABLE"):
			return p.parseCreateTable()
		case p.accept("INDEX"):
			return p.parseCreateIndex()
		case p.accept("RECOMMENDER"):
			return p.parseCreateRecommender()
		default:
			return nil, p.errorf("expected TABLE, INDEX, or RECOMMENDER after CREATE")
		}
	case p.accept("DROP"):
		switch {
		case p.accept("TABLE"):
			ifExists := p.acceptIfExists()
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &DropTable{Name: name, IfExists: ifExists}, nil
		case p.accept("RECOMMENDER"):
			ifExists := p.acceptIfExists()
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &DropRecommender{Name: name, IfExists: ifExists}, nil
		default:
			return nil, p.errorf("expected TABLE or RECOMMENDER after DROP")
		}
	case p.accept("BEGIN"):
		p.accept("TRANSACTION")
		return &Begin{}, nil
	case p.accept("START"):
		if err := p.expect("TRANSACTION"); err != nil {
			return nil, err
		}
		return &Begin{}, nil
	case p.accept("COMMIT"):
		p.accept("TRANSACTION")
		return &Commit{}, nil
	case p.accept("ROLLBACK"):
		p.accept("TRANSACTION")
		return &Rollback{}, nil
	case p.accept("INSERT"):
		return p.parseInsert()
	case p.accept("DELETE"):
		return p.parseDelete()
	case p.accept("UPDATE"):
		return p.parseUpdate()
	case p.accept("SELECT"):
		return p.parseSelect()
	case p.accept("EXPLAIN"):
		analyze := p.accept("ANALYZE")
		if err := p.expect("SELECT"); err != nil {
			return nil, err
		}
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &Explain{Query: sel, Analyze: analyze}, nil
	default:
		return nil, p.errorf("expected a statement, got %s", p.peek())
	}
}

func (p *parser) acceptIfExists() bool {
	if p.peekIs("IF") {
		save := p.pos
		p.pos++
		if p.accept("EXISTS") {
			return true
		}
		p.pos = save
	}
	return false
}

func (p *parser) parseCreateTable() (*CreateTable, error) {
	ct := &CreateTable{}
	if p.peekIs("IF") {
		save := p.pos
		p.pos++
		if p.accept("NOT") && p.accept("EXISTS") {
			ct.IfNotExists = true
		} else {
			p.pos = save
		}
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ct.Name = name
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		typ, err := p.ident()
		if err != nil {
			return nil, err
		}
		def := ColumnDef{Name: col, TypeName: typ}
		if p.accept("PRIMARY") {
			if err := p.expect("KEY"); err != nil {
				return nil, err
			}
			def.PrimaryKey = true
		}
		ct.Cols = append(ct.Cols, def)
		if p.accept(",") {
			continue
		}
		break
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return ct, nil
}

func (p *parser) parseCreateIndex() (*CreateIndex, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("ON"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	col, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return &CreateIndex{Name: name, Table: table, Column: col}, nil
}

// parseCreateRecommender parses the tail of CREATE RECOMMENDER:
//
//	name ON table USERS FROM col ITEMS FROM col RATINGS FROM col
//	[USING alg] [WITH WORKERS n]
//
// The paper's examples also write "ITEM FROM"; both spellings are accepted.
func (p *parser) parseCreateRecommender() (*CreateRecommender, error) {
	cr := &CreateRecommender{}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	cr.Name = name
	if err := p.expect("ON"); err != nil {
		return nil, err
	}
	if cr.Table, err = p.ident(); err != nil {
		return nil, err
	}
	if err := p.expect("USERS"); err != nil {
		return nil, err
	}
	if err := p.expect("FROM"); err != nil {
		return nil, err
	}
	if cr.UserCol, err = p.ident(); err != nil {
		return nil, err
	}
	if !p.accept("ITEMS") && !p.accept("ITEM") {
		return nil, p.errorf("expected ITEMS, got %s", p.peek())
	}
	if err := p.expect("FROM"); err != nil {
		return nil, err
	}
	if cr.ItemCol, err = p.ident(); err != nil {
		return nil, err
	}
	if err := p.expect("RATINGS"); err != nil {
		return nil, err
	}
	if err := p.expect("FROM"); err != nil {
		return nil, err
	}
	if cr.RatingCol, err = p.ident(); err != nil {
		return nil, err
	}
	if p.accept("USING") {
		if cr.Algorithm, err = p.ident(); err != nil {
			return nil, err
		}
	}
	if p.accept("WITH") {
		if err := p.expect("WORKERS"); err != nil {
			return nil, err
		}
		t := p.peek()
		if t.Kind != TokNumber {
			return nil, p.errorf("expected worker count, got %s", t)
		}
		n, err := strconv.ParseInt(t.Text, 10, 32)
		if err != nil || n < 1 {
			return nil, p.errorf("WORKERS needs a positive integer, got %s", t.Text)
		}
		p.pos++
		cr.Workers = int(n)
	}
	return cr, nil
}

func (p *parser) parseInsert() (*Insert, error) {
	if err := p.expect("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	if p.accept("(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Cols = append(ins.Cols, col)
			if p.accept(",") {
				continue
			}
			break
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expect("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.accept(",") {
				continue
			}
			break
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if p.accept(",") {
			continue
		}
		break
	}
	return ins, nil
}

func (p *parser) parseDelete() (*Delete, error) {
	if err := p.expect("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	d := &Delete{Table: table}
	if p.accept("WHERE") {
		if d.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return d, nil
}

func (p *parser) parseUpdate() (*Update, error) {
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	u := &Update{Table: table}
	if err := p.expect("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Set = append(u.Set, Assignment{Column: col, Value: val})
		if p.accept(",") {
			continue
		}
		break
	}
	if p.accept("WHERE") {
		if u.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return u, nil
}

func (p *parser) parseSelect() (*Select, error) {
	s := &Select{}
	if p.accept("DISTINCT") {
		s.Distinct = true
	}
	// Projection list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if p.accept(",") {
			continue
		}
		break
	}
	if err := p.expect("FROM"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		s.From = append(s.From, ref)
		if p.accept(",") {
			continue
		}
		break
	}
	if p.accept("RECOMMEND") {
		rc, err := p.parseRecommendClause()
		if err != nil {
			return nil, err
		}
		s.Recommend = rc
	}
	if p.accept("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	if p.accept("GROUP") {
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if p.accept(",") {
				continue
			}
			break
		}
	}
	if p.accept("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = h
	}
	if p.accept("ORDER") {
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept("DESC") {
				item.Desc = true
			} else {
				p.accept("ASC")
			}
			s.OrderBy = append(s.OrderBy, item)
			if p.accept(",") {
				continue
			}
			break
		}
	}
	if p.accept("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Limit = e
	}
	if p.accept("OFFSET") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Offset = e
	}
	return s, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept("*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept("AS") {
		alias, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if t := p.peek(); t.Kind == TokIdent && !reservedAliasWords[strings.ToLower(t.Text)] {
		item.Alias = t.Text
		p.pos++
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	table, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: table}
	if p.accept("AS") {
		if ref.Alias, err = p.ident(); err != nil {
			return TableRef{}, err
		}
	} else if t := p.peek(); t.Kind == TokIdent && !reservedAliasWords[strings.ToLower(t.Text)] {
		ref.Alias = t.Text
		p.pos++
	}
	return ref, nil
}

// parseRecommendClause parses the tail of:
//
//	RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
func (p *parser) parseRecommendClause() (*RecommendClause, error) {
	rc := &RecommendClause{}
	var err error
	if rc.Item, err = p.parseColumnRef(); err != nil {
		return nil, err
	}
	if err := p.expect("TO"); err != nil {
		return nil, err
	}
	if rc.User, err = p.parseColumnRef(); err != nil {
		return nil, err
	}
	if err := p.expect("ON"); err != nil {
		return nil, err
	}
	if rc.Rating, err = p.parseColumnRef(); err != nil {
		return nil, err
	}
	if p.accept("USING") {
		if rc.Algorithm, err = p.ident(); err != nil {
			return nil, err
		}
	}
	return rc, nil
}

func (p *parser) parseColumnRef() (*ColumnRef, error) {
	first, err := p.ident()
	if err != nil {
		return nil, err
	}
	if p.accept(".") {
		second, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &ColumnRef{Qualifier: first, Name: second}, nil
	}
	return &ColumnRef{Name: first}, nil
}

// ---- Expressions (precedence climbing) ----

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.accept("IS") {
		neg := p.accept("NOT")
		if err := p.expect("NULL"); err != nil {
			return nil, err
		}
		return &IsNull{X: l, Negate: neg}, nil
	}
	// [NOT] IN / LIKE / BETWEEN
	negIn := false
	if p.peekIs("NOT") {
		save := p.pos
		p.pos++
		if p.peekIs("IN") || p.peekIs("LIKE") || p.peekIs("BETWEEN") {
			negIn = true
		} else {
			p.pos = save
		}
	}
	if p.accept("LIKE") {
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Like{X: l, Pattern: pat, Negate: negIn}, nil
	}
	if p.accept("BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expect("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Between{X: l, Lo: lo, Hi: hi, Negate: negIn}, nil
	}
	if p.accept("IN") {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if p.accept(",") {
				continue
			}
			break
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &In{X: l, List: list, Negate: negIn}, nil
	}
	ops := []struct {
		text string
		op   BinaryOp
	}{
		{"<=", OpLe}, {">=", OpGe}, {"<>", OpNe}, {"!=", OpNe},
		{"=", OpEq}, {"<", OpLt}, {">", OpGt},
	}
	for _, o := range ops {
		if p.accept(o.text) {
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: o.op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("+"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpAdd, L: l, R: r}
		case p.accept("-"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpSub, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpMul, L: l, R: r}
		case p.accept("/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpDiv, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := x.(*Literal); ok {
			if f, isF := lit.Value.AsFloat(); isF && lit.Value.Kind() == types.KindFloat {
				return &Literal{Value: types.NewFloat(-f)}, nil
			}
			if i, isI := lit.Value.AsInt(); isI && lit.Value.Kind() == types.KindInt {
				return &Literal{Value: types.NewInt(-i)}, nil
			}
		}
		return &Unary{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.pos++
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.Text)
			}
			return &Literal{Value: types.NewFloat(f)}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer %q", t.Text)
		}
		return &Literal{Value: types.NewInt(i)}, nil
	case TokString:
		p.pos++
		return &Literal{Value: types.NewText(t.Text)}, nil
	case TokIdent:
		switch strings.ToUpper(t.Text) {
		case "TRUE":
			p.pos++
			return &Literal{Value: types.NewBool(true)}, nil
		case "FALSE":
			p.pos++
			return &Literal{Value: types.NewBool(false)}, nil
		case "NULL":
			p.pos++
			return &Literal{Value: types.Null()}, nil
		}
		name, _ := p.ident()
		// Function call?
		if p.peekIs("(") {
			p.pos++
			call := &Call{Name: name}
			if p.peekIs("*") {
				p.pos++
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				call.Args = append(call.Args, &Star{})
				return call, nil
			}
			if !p.accept(")") {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if p.accept(",") {
						continue
					}
					break
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
			}
			return call, nil
		}
		if p.accept(".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Qualifier: name, Name: col}, nil
		}
		return &ColumnRef{Name: name}, nil
	case TokSymbol:
		if t.Text == "(" {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errorf("expected expression, got %s", t)
}
