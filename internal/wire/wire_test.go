package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"recdb/internal/types"
)

// TestFrameGolden pins the exact bytes of one frame so the format cannot
// drift silently: a protocol change must change this fixture on purpose.
func TestFrameGolden(t *testing.T) {
	var buf bytes.Buffer
	payload := AppendRequest(nil, Request{ID: 7, TimeoutMillis: 250, SQL: "SELECT 1"})
	if err := WriteFrame(&buf, TypeQuery, payload); err != nil {
		t.Fatal(err)
	}
	want := []byte{
		0x11, 0x00, 0x00, 0x00, // len = 17 (type + 8 header bytes + 8 SQL bytes)
		0x06, 0x96, 0x88, 0xf4, // crc32c over type+payload
		'Q',
		0x07, 0x00, 0x00, 0x00, // id = 7
		0xfa, 0x00, 0x00, 0x00, // timeout = 250ms
		'S', 'E', 'L', 'E', 'C', 'T', ' ', '1',
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("frame bytes drifted:\n got %#v\nwant %#v", buf.Bytes(), want)
	}
}

// TestRowBatchGolden pins the exact bytes of a multi-row batch frame: the
// request id, a uvarint tuple count, then the tuples back to back in the
// engine encoding. A change to any layer of the encoding must show up
// here on purpose.
func TestRowBatchGolden(t *testing.T) {
	var buf bytes.Buffer
	rows := []types.Row{
		{types.NewInt(1), types.NewText("a")},
		{types.NewInt(-2), types.NewText("bc")},
	}
	if err := WriteFrame(&buf, TypeRowBatch, AppendRowBatch(nil, 9, rows)); err != nil {
		t.Fatal(err)
	}
	want := []byte{
		0x13, 0x00, 0x00, 0x00, // len = 19 (type + 4 id + 1 count + 13 tuple bytes)
		0x7b, 0xe0, 0x70, 0x0a, // crc32c over type+payload
		'r',
		0x09, 0x00, 0x00, 0x00, // id = 9
		0x02,                               // 2 tuples
		0x02, 0x01, 0x02, 0x03, 0x01, 'a', // row 1: int 1 (zigzag 2), text "a"
		0x02, 0x01, 0x03, 0x03, 0x02, 'b', 'c', // row 2: int -2 (zigzag 3), text "bc"
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("frame bytes drifted:\n got %#v\nwant %#v", buf.Bytes(), want)
	}
	id, got, err := DecodeRowBatch(buf.Bytes()[9:])
	if err != nil || id != 9 || len(got) != 2 {
		t.Fatalf("decode = id %d, %d rows, %v", id, len(got), err)
	}
	for i := range rows {
		for j := range rows[i] {
			if got[i][j].String() != rows[i][j].String() {
				t.Fatalf("row %d value %d = %v, want %v", i, j, got[i][j], rows[i][j])
			}
		}
	}
}

// TestRoundTrip encodes and decodes every frame kind through a stream.
func TestRoundTrip(t *testing.T) {
	row := types.Row{types.NewInt(42), types.NewFloat(4.5), types.NewText("hi"), types.NewBool(true), types.Null()}
	var stream bytes.Buffer
	write := func(ft Type, payload []byte) {
		t.Helper()
		if err := WriteFrame(&stream, ft, payload); err != nil {
			t.Fatal(err)
		}
	}
	write(TypeHello, AppendHello(nil, Hello{SessionID: 9, Server: "recdb-server/1"}))
	write(TypeQuery, AppendRequest(nil, Request{ID: 1, SQL: "SELECT * FROM t"}))
	write(TypeExec, AppendRequest(nil, Request{ID: 2, TimeoutMillis: 1000, SQL: "INSERT INTO t VALUES (1)"}))
	write(TypePing, AppendID(nil, 3))
	write(TypeCancel, AppendID(nil, 1))
	write(TypeRowDesc, AppendRowDesc(nil, RowDesc{ID: 1, Strategy: "IndexRecommend", Columns: []string{"iid", "ratingval"}}))
	write(TypeDataRow, AppendDataRow(nil, 1, row))
	write(TypeRowBatch, AppendRowBatch(nil, 1, []types.Row{row, row, row}))
	write(TypeComplete, AppendComplete(nil, Complete{ID: 1, Rows: 5}))
	write(TypePong, AppendID(nil, 3))
	write(TypeError, AppendError(nil, ErrorMsg{ID: 2, Code: CodeTimeout, Message: "query timed out"}))

	var buf []byte
	next := func(want Type) []byte {
		t.Helper()
		ft, payload, nbuf, err := ReadFrame(&stream, buf)
		if err != nil {
			t.Fatal(err)
		}
		buf = nbuf
		if ft != want {
			t.Fatalf("frame type %c, want %c", ft, want)
		}
		return payload
	}

	h, err := DecodeHello(next(TypeHello))
	if err != nil || h.SessionID != 9 || h.Server != "recdb-server/1" {
		t.Fatalf("hello = %+v, %v", h, err)
	}
	q, err := DecodeRequest(next(TypeQuery))
	if err != nil || q.ID != 1 || q.TimeoutMillis != 0 || q.SQL != "SELECT * FROM t" {
		t.Fatalf("query = %+v, %v", q, err)
	}
	e, err := DecodeRequest(next(TypeExec))
	if err != nil || e.ID != 2 || e.TimeoutMillis != 1000 || e.SQL != "INSERT INTO t VALUES (1)" {
		t.Fatalf("exec = %+v, %v", e, err)
	}
	if id, err := DecodeID(next(TypePing)); err != nil || id != 3 {
		t.Fatalf("ping id = %d, %v", id, err)
	}
	if id, err := DecodeID(next(TypeCancel)); err != nil || id != 1 {
		t.Fatalf("cancel id = %d, %v", id, err)
	}
	d, err := DecodeRowDesc(next(TypeRowDesc))
	if err != nil || d.ID != 1 || d.Strategy != "IndexRecommend" || !reflect.DeepEqual(d.Columns, []string{"iid", "ratingval"}) {
		t.Fatalf("rowdesc = %+v, %v", d, err)
	}
	id, got, err := DecodeDataRow(next(TypeDataRow))
	if err != nil || id != 1 {
		t.Fatalf("datarow id = %d, %v", id, err)
	}
	if len(got) != len(row) {
		t.Fatalf("row has %d values, want %d", len(got), len(row))
	}
	for i := range row {
		if got[i].String() != row[i].String() {
			t.Fatalf("value %d = %v, want %v", i, got[i], row[i])
		}
	}
	bid, batch, err := DecodeRowBatch(next(TypeRowBatch))
	if err != nil || bid != 1 || len(batch) != 3 {
		t.Fatalf("rowbatch = id %d, %d rows, %v", bid, len(batch), err)
	}
	for _, b := range batch {
		for i := range row {
			if b[i].String() != row[i].String() {
				t.Fatalf("batch value %d = %v, want %v", i, b[i], row[i])
			}
		}
	}
	c, err := DecodeComplete(next(TypeComplete))
	if err != nil || c.ID != 1 || c.Rows != 5 {
		t.Fatalf("complete = %+v, %v", c, err)
	}
	if id, err := DecodeID(next(TypePong)); err != nil || id != 3 {
		t.Fatalf("pong id = %d, %v", id, err)
	}
	em, err := DecodeError(next(TypeError))
	if err != nil || em.ID != 2 || em.Code != CodeTimeout || em.Message != "query timed out" {
		t.Fatalf("error = %+v, %v", em, err)
	}
	if _, _, _, err := ReadFrame(&stream, buf); err != io.EOF {
		t.Fatalf("expected clean EOF, got %v", err)
	}
}

// TestTornFrames rejects truncation at every boundary of a valid frame.
func TestTornFrames(t *testing.T) {
	var full bytes.Buffer
	if err := WriteFrame(&full, TypeQuery, AppendRequest(nil, Request{ID: 1, SQL: "SELECT 1"})); err != nil {
		t.Fatal(err)
	}
	raw := full.Bytes()
	for cut := 1; cut < len(raw); cut++ {
		_, _, _, err := ReadFrame(bytes.NewReader(raw[:cut]), nil)
		var fe *FrameError
		if !errors.As(err, &fe) {
			t.Fatalf("cut at %d: err = %v, want *FrameError", cut, err)
		}
	}
}

// TestBadCRC rejects every single-bit corruption of a frame body.
func TestBadCRC(t *testing.T) {
	var full bytes.Buffer
	if err := WriteFrame(&full, TypeExec, AppendRequest(nil, Request{ID: 2, SQL: "INSERT INTO t VALUES (1)"})); err != nil {
		t.Fatal(err)
	}
	raw := full.Bytes()
	// Flip a bit in the type byte, mid-payload, and the final byte; the
	// CRC must catch each.
	for _, off := range []int{8, 12, len(raw) - 1} {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x40
		_, _, _, err := ReadFrame(bytes.NewReader(mut), nil)
		var fe *FrameError
		if !errors.As(err, &fe) || !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("flip at %d: err = %v, want checksum FrameError", off, err)
		}
	}
}

// TestOversizedFrame rejects declared lengths beyond MaxFrameSize without
// allocating them.
func TestOversizedFrame(t *testing.T) {
	hdr := make([]byte, 8)
	binary.LittleEndian.PutUint32(hdr[0:4], MaxFrameSize+1)
	_, _, _, err := ReadFrame(bytes.NewReader(hdr), nil)
	var fe *FrameError
	if !errors.As(err, &fe) || !strings.Contains(err.Error(), "declares") {
		t.Fatalf("err = %v, want oversized FrameError", err)
	}
	// The writer refuses to produce one, too.
	if err := WriteFrame(io.Discard, TypeQuery, make([]byte, MaxFrameSize)); err == nil {
		t.Fatal("WriteFrame accepted an oversized payload")
	}
}

// TestEmptyAndZeroFrames rejects a zero-length frame (no type byte).
func TestEmptyAndZeroFrames(t *testing.T) {
	hdr := make([]byte, 8) // len = 0
	_, _, _, err := ReadFrame(bytes.NewReader(hdr), nil)
	var fe *FrameError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v, want *FrameError", err)
	}
}

// TestDecodeTruncatedPayloads exercises each message decoder against short
// inputs.
func TestDecodeTruncatedPayloads(t *testing.T) {
	if _, err := DecodeRequest([]byte{1, 2, 3}); err == nil {
		t.Error("DecodeRequest accepted a short payload")
	}
	if _, err := DecodeID([]byte{1}); err == nil {
		t.Error("DecodeID accepted a short payload")
	}
	if _, err := DecodeHello([]byte{1}); err == nil {
		t.Error("DecodeHello accepted a short payload")
	}
	if _, err := DecodeRowDesc([]byte{1, 0, 0, 0, 5}); err == nil {
		t.Error("DecodeRowDesc accepted a truncated string")
	}
	if _, _, err := DecodeDataRow([]byte{1, 0, 0, 0, 2, byte(types.KindText)}); err == nil {
		t.Error("DecodeDataRow accepted a truncated row")
	}
	if _, _, err := DecodeRowBatch([]byte{1, 0, 0}); err == nil {
		t.Error("DecodeRowBatch accepted a short payload")
	}
	if _, _, err := DecodeRowBatch([]byte{1, 0, 0, 0, 2, 1, byte(types.KindInt)}); err == nil {
		t.Error("DecodeRowBatch accepted a truncated tuple")
	}
	if _, _, err := DecodeRowBatch(append(AppendRowBatch(nil, 1, []types.Row{{types.NewInt(1)}}), 0xff)); err == nil {
		t.Error("DecodeRowBatch accepted trailing bytes")
	}
	if _, err := DecodeComplete([]byte{1, 0, 0, 0}); err == nil {
		t.Error("DecodeComplete accepted a missing count")
	}
	if _, err := DecodeError([]byte{1, 0, 0, 0, 9}); err == nil {
		t.Error("DecodeError accepted a truncated code")
	}
}
