// Package wire defines the recdb-server client/server protocol: a
// length-prefixed, CRC-framed binary format over a byte stream, sharing
// the framing discipline of the write-ahead log (internal/wal) so a
// corrupt or truncated frame is detected before any payload is trusted.
//
// A connection opens with the client sending the 6-byte magic "RDBP1\n";
// the server answers with a Hello frame (or an Error frame when it
// refuses the connection, e.g. at capacity). After the handshake the
// client sends request frames and the server answers each with a
// response-frame sequence:
//
//	frame := len uint32 LE    length of type + payload
//	         crc uint32 LE    CRC32-C over type + payload
//	         type byte        frame type
//	         payload []byte
//
// Request frames: Query ('Q'), Exec ('E'), Ping ('P'), Cancel ('C').
// Response frames: Hello ('H'), RowDescription ('D'), DataRow ('R'),
// CommandComplete ('Z'), Pong ('p'), Error ('e').
//
// Every request carries a client-assigned id; every response frame echoes
// the id of the request it answers, so a client may pipeline requests. A
// Query answer is RowDescription, zero or more DataRows, then
// CommandComplete; an Exec answer is CommandComplete alone; Error is a
// terminal answer to any request. Cancel has no answer of its own — it
// asks the server to interrupt the identified in-flight request, whose own
// answer then arrives as an Error with code "canceled" (or its normal
// result, if it completed first).
//
// DataRow payloads reuse the engine's self-describing tuple encoding
// (types.EncodeRow), so the client decodes rows without a schema.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"recdb/internal/types"
)

// Magic is the 6-byte preamble a client sends after connecting; the
// trailing 1 is the protocol version.
const Magic = "RDBP1\n"

// MaxFrameSize bounds a declared frame length so a corrupt or hostile
// header cannot drive a huge allocation (the same bound the WAL applies
// to its records).
const MaxFrameSize = 16 << 20

// frameHeaderSize is len + crc.
const frameHeaderSize = 4 + 4

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Type identifies a frame.
type Type byte

// Request frame types.
const (
	TypeQuery  Type = 'Q' // SELECT/EXPLAIN returning rows
	TypeExec   Type = 'E' // statement or script returning an affected count
	TypePing   Type = 'P' // liveness probe
	TypeCancel Type = 'C' // interrupt an in-flight request by id
)

// Response frame types.
const (
	TypeHello    Type = 'H' // handshake answer: session id + server version
	TypeRowDesc  Type = 'D' // result column names + planner strategy
	TypeDataRow  Type = 'R' // one result tuple
	TypeRowBatch Type = 'r' // several result tuples in one frame
	TypeComplete Type = 'Z' // terminal: affected/returned row count
	TypePong     Type = 'p' // answer to Ping
	TypeError    Type = 'e' // terminal: typed error
)

// Error codes carried by Error frames.
const (
	CodeBusy     = "busy"     // server at its connection limit
	CodeShutdown = "shutdown" // server draining; request not executed
	CodeTimeout  = "timeout"  // per-query timeout elapsed
	CodeCanceled = "canceled" // interrupted by a Cancel frame or client disconnect
	CodeQuery    = "query"    // SQL parse/plan/execution error
	CodeProtocol = "protocol" // malformed frame or handshake
	CodeInternal = "internal" // server-side panic or invariant failure

	// CodeShardDown is answered by the sharding router (internal/shard)
	// when the shard owning a statement's user key — or a shard a
	// fan-out needs — stays unreachable past the router's bounded
	// retries. Single-shard statements to healthy shards keep serving.
	CodeShardDown = "shard_down"
)

// FrameError describes a frame that failed validation (bad CRC, oversized
// declared length, or a truncated payload mid-stream).
type FrameError struct {
	Reason string
}

// Error implements error.
func (e *FrameError) Error() string { return "wire: " + e.Reason }

// WriteFrame writes one frame. The payload is borrowed, not retained.
func WriteFrame(w io.Writer, t Type, payload []byte) error {
	if len(payload)+1 > MaxFrameSize {
		return &FrameError{Reason: fmt.Sprintf("frame of %d bytes exceeds the %d-byte bound", len(payload)+1, MaxFrameSize)}
	}
	buf := make([]byte, frameHeaderSize+1+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(1+len(payload)))
	buf[8] = byte(t)
	copy(buf[9:], payload)
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(buf[8:], castagnoli))
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one frame, reusing buf when it is large enough, and
// returns the frame type and payload (aliasing the returned buffer, valid
// until the next ReadFrame with the same buf). io.EOF is returned
// unwrapped when the stream ends cleanly between frames; a frame that
// fails validation returns a *FrameError.
func ReadFrame(r io.Reader, buf []byte) (Type, []byte, []byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, nil, buf, &FrameError{Reason: "truncated frame header"}
		}
		return 0, nil, buf, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
	if n == 0 {
		return 0, nil, buf, &FrameError{Reason: "empty frame"}
	}
	if n > MaxFrameSize {
		return 0, nil, buf, &FrameError{Reason: fmt.Sprintf("frame declares %d bytes (max %d)", n, MaxFrameSize)}
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	body := buf[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, buf, &FrameError{Reason: "truncated frame payload"}
	}
	if got := crc32.Checksum(body, castagnoli); got != wantCRC {
		return 0, nil, buf, &FrameError{Reason: fmt.Sprintf("frame checksum mismatch (%08x != %08x)", got, wantCRC)}
	}
	return Type(body[0]), body[1:], buf, nil
}

// ---- Payload encodings ----
//
// Integers are fixed-width little-endian for ids and varint/uvarint for
// counts; strings are uvarint length + bytes.

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func readString(p []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(p)
	if sz <= 0 || uint64(len(p)-sz) < n {
		return "", nil, &FrameError{Reason: "truncated string"}
	}
	return string(p[sz : sz+int(n)]), p[sz+int(n):], nil
}

// Request is a decoded Query or Exec frame.
type Request struct {
	// ID is the client-assigned request id echoed by every response frame.
	ID uint32
	// TimeoutMillis bounds the query's execution on the server (0 = the
	// server's default policy).
	TimeoutMillis uint32
	// SQL is the statement (Query) or statement/script (Exec) text.
	SQL string
}

// AppendRequest encodes a Query/Exec payload.
func AppendRequest(dst []byte, r Request) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, r.ID)
	dst = binary.LittleEndian.AppendUint32(dst, r.TimeoutMillis)
	return append(dst, r.SQL...)
}

// DecodeRequest decodes a Query/Exec payload.
func DecodeRequest(p []byte) (Request, error) {
	if len(p) < 8 {
		return Request{}, &FrameError{Reason: "truncated request"}
	}
	return Request{
		ID:            binary.LittleEndian.Uint32(p[0:4]),
		TimeoutMillis: binary.LittleEndian.Uint32(p[4:8]),
		SQL:           string(p[8:]),
	}, nil
}

// AppendID encodes a Ping, Pong, or Cancel payload (the request id alone).
func AppendID(dst []byte, id uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, id)
}

// DecodeID decodes a Ping, Pong, or Cancel payload.
func DecodeID(p []byte) (uint32, error) {
	if len(p) < 4 {
		return 0, &FrameError{Reason: "truncated id"}
	}
	return binary.LittleEndian.Uint32(p[0:4]), nil
}

// Hello is the server's handshake answer.
type Hello struct {
	SessionID uint64
	Server    string
}

// AppendHello encodes a Hello payload.
func AppendHello(dst []byte, h Hello) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, h.SessionID)
	return append(dst, h.Server...)
}

// DecodeHello decodes a Hello payload.
func DecodeHello(p []byte) (Hello, error) {
	if len(p) < 8 {
		return Hello{}, &FrameError{Reason: "truncated hello"}
	}
	return Hello{SessionID: binary.LittleEndian.Uint64(p[0:8]), Server: string(p[8:])}, nil
}

// RowDesc announces a Query result: its column names and the
// recommendation strategy the planner chose ("" for plain queries).
type RowDesc struct {
	ID       uint32
	Strategy string
	Columns  []string
}

// AppendRowDesc encodes a RowDescription payload.
func AppendRowDesc(dst []byte, d RowDesc) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, d.ID)
	dst = appendString(dst, d.Strategy)
	dst = binary.AppendUvarint(dst, uint64(len(d.Columns)))
	for _, c := range d.Columns {
		dst = appendString(dst, c)
	}
	return dst
}

// DecodeRowDesc decodes a RowDescription payload.
func DecodeRowDesc(p []byte) (RowDesc, error) {
	if len(p) < 4 {
		return RowDesc{}, &FrameError{Reason: "truncated row description"}
	}
	d := RowDesc{ID: binary.LittleEndian.Uint32(p[0:4])}
	rest := p[4:]
	var err error
	if d.Strategy, rest, err = readString(rest); err != nil {
		return RowDesc{}, err
	}
	n, sz := binary.Uvarint(rest)
	if sz <= 0 || n > MaxFrameSize {
		return RowDesc{}, &FrameError{Reason: "truncated column count"}
	}
	rest = rest[sz:]
	d.Columns = make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		var c string
		if c, rest, err = readString(rest); err != nil {
			return RowDesc{}, err
		}
		d.Columns = append(d.Columns, c)
	}
	return d, nil
}

// AppendDataRow encodes a DataRow payload: the request id followed by the
// engine's binary tuple encoding.
func AppendDataRow(dst []byte, id uint32, row types.Row) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, id)
	return types.EncodeRow(dst, row)
}

// DecodeDataRow decodes a DataRow payload.
func DecodeDataRow(p []byte) (uint32, types.Row, error) {
	if len(p) < 4 {
		return 0, nil, &FrameError{Reason: "truncated data row"}
	}
	id := binary.LittleEndian.Uint32(p[0:4])
	row, _, err := types.DecodeRow(p[4:])
	if err != nil {
		return 0, nil, fmt.Errorf("wire: %w", err)
	}
	return id, row, nil
}

// RowBatch carries several result tuples in one frame, amortizing the
// 9-byte frame header and per-frame CRC over a batch. High-fanout scans
// produce thousands of small tuples; one syscall-sized frame per tuple
// dominates the wire cost, so the server coalesces them (singles still
// travel as DataRow). The payload is the request id, a uvarint tuple
// count, then the tuples back to back in the engine's self-describing
// encoding.

// AppendRowBatch encodes a RowBatch payload.
func AppendRowBatch(dst []byte, id uint32, rows []types.Row) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, id)
	dst = binary.AppendUvarint(dst, uint64(len(rows)))
	for _, r := range rows {
		dst = types.EncodeRow(dst, r)
	}
	return dst
}

// DecodeRowBatch decodes a RowBatch payload.
func DecodeRowBatch(p []byte) (uint32, []types.Row, error) {
	if len(p) < 4 {
		return 0, nil, &FrameError{Reason: "truncated row batch"}
	}
	id := binary.LittleEndian.Uint32(p[0:4])
	n, sz := binary.Uvarint(p[4:])
	if sz <= 0 || n > MaxFrameSize {
		return 0, nil, &FrameError{Reason: "truncated batch count"}
	}
	rest := p[4+sz:]
	rows := make([]types.Row, 0, n)
	for i := uint64(0); i < n; i++ {
		row, used, err := types.DecodeRow(rest)
		if err != nil {
			return 0, nil, fmt.Errorf("wire: %w", err)
		}
		rows = append(rows, row)
		rest = rest[used:]
	}
	if len(rest) != 0 {
		return 0, nil, &FrameError{Reason: "trailing bytes after row batch"}
	}
	return id, rows, nil
}

// Complete is the terminal success frame: the affected row count for Exec,
// the returned row count for Query.
type Complete struct {
	ID   uint32
	Rows int64
}

// AppendComplete encodes a CommandComplete payload.
func AppendComplete(dst []byte, c Complete) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, c.ID)
	return binary.AppendVarint(dst, c.Rows)
}

// DecodeComplete decodes a CommandComplete payload.
func DecodeComplete(p []byte) (Complete, error) {
	if len(p) < 4 {
		return Complete{}, &FrameError{Reason: "truncated command complete"}
	}
	rows, sz := binary.Varint(p[4:])
	if sz <= 0 {
		return Complete{}, &FrameError{Reason: "truncated row count"}
	}
	return Complete{ID: binary.LittleEndian.Uint32(p[0:4]), Rows: rows}, nil
}

// ErrorMsg is the terminal failure frame.
type ErrorMsg struct {
	ID      uint32
	Code    string // one of the Code* constants
	Message string
}

// AppendError encodes an Error payload.
func AppendError(dst []byte, e ErrorMsg) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, e.ID)
	dst = appendString(dst, e.Code)
	return appendString(dst, e.Message)
}

// DecodeError decodes an Error payload.
func DecodeError(p []byte) (ErrorMsg, error) {
	if len(p) < 4 {
		return ErrorMsg{}, &FrameError{Reason: "truncated error"}
	}
	e := ErrorMsg{ID: binary.LittleEndian.Uint32(p[0:4])}
	rest := p[4:]
	var err error
	if e.Code, rest, err = readString(rest); err != nil {
		return ErrorMsg{}, err
	}
	if e.Message, _, err = readString(rest); err != nil {
		return ErrorMsg{}, err
	}
	return e, nil
}
