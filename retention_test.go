package recdb

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// genDirs lists the snapshot generation directories under dir, sorted by
// name (which sorts by generation number).
func genDirs(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var gens []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "gen-") {
			gens = append(gens, e.Name())
		}
	}
	return gens
}

func countRatings(t *testing.T, db *DB) int64 {
	t.Helper()
	rows, err := db.Query("SELECT COUNT(*) FROM ratings")
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	var n int64
	if err := rows.Scan(&n); err != nil {
		t.Fatal(err)
	}
	return n
}

// checkpointGenerations writes count checkpoints into dir, inserting one
// extra rating before each, so generation k holds base+k rows.
func checkpointGenerations(t *testing.T, db *DB, dir string, count int) {
	t.Helper()
	for k := 1; k <= count; k++ {
		db.MustExec(fmt.Sprintf("INSERT INTO ratings VALUES (%d, %d, 1.0)", 100+k, k))
		if err := db.SaveTo(dir); err != nil {
			t.Fatalf("checkpoint %d: %v", k, err)
		}
	}
}

func TestSnapshotRetainBound(t *testing.T) {
	// Default: two generations survive repeated checkpoints.
	db := newDB(t)
	dir := t.TempDir()
	checkpointGenerations(t, db, dir, 5)
	if gens := genDirs(t, dir); len(gens) != 2 {
		t.Fatalf("default retention kept %v, want 2 generations", gens)
	}

	// WithSnapshotRetain(4) widens the bound.
	db4 := newDB(t, WithSnapshotRetain(4))
	dir4 := t.TempDir()
	checkpointGenerations(t, db4, dir4, 6)
	if gens := genDirs(t, dir4); len(gens) != 4 {
		t.Fatalf("retain=4 kept %v, want 4 generations", gens)
	}

	// The bound carries across OpenDir: reopening with the option and
	// checkpointing again still prunes to 4.
	db4.Close()
	re, err := OpenDir(dir4, WithSnapshotRetain(4))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	re.MustExec("INSERT INTO ratings VALUES (200, 1, 2.0)")
	if err := re.SaveTo(dir4); err != nil {
		t.Fatal(err)
	}
	if gens := genDirs(t, dir4); len(gens) != 4 {
		t.Fatalf("retain=4 after reopen kept %v, want 4 generations", gens)
	}
}

// TestRecoveryFallsBackPastMultipleCorruptGenerations pins the reason a
// wider retention bound exists: with retain=4 and the newest two
// generations corrupted, OpenDir must walk back to the newest generation
// that verifies and report every skip.
func TestRecoveryFallsBackPastMultipleCorruptGenerations(t *testing.T) {
	db := newDB(t, WithSnapshotRetain(4))
	base := countRatings(t, db)
	dir := t.TempDir()
	checkpointGenerations(t, db, dir, 4)
	db.Close()

	gens := genDirs(t, dir)
	if len(gens) != 4 {
		t.Fatalf("fixture: %v, want 4 generations", gens)
	}
	// Corrupt the newest two generations' manifests (flip one byte each).
	for _, g := range gens[len(gens)-2:] {
		path := filepath.Join(dir, g, "manifest.json")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xFF
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	re, err := OpenDir(dir, WithSnapshotRetain(4))
	if err != nil {
		t.Fatalf("recovery should fall back past corrupt generations: %v", err)
	}
	defer re.Close()
	if got := re.Durability().SkippedGenerations; got != 2 {
		t.Fatalf("SkippedGenerations = %d, want 2", got)
	}
	// Generation 2's state: base rows plus the first two checkpoint
	// inserts. The newer generations' rows are gone with their snapshots.
	if got := countRatings(t, re); got != base+2 {
		t.Fatalf("recovered rows = %d, want %d", got, base+2)
	}
}
