// Command recdb-server serves a recdb database over TCP speaking the
// wire protocol (DESIGN.md §10). It opens (or creates) a durable home
// with -dir, optionally seeds it with a synthetic dataset (-load), and
// drains gracefully on SIGINT/SIGTERM: in-flight statements finish and
// a final checkpoint lands before exit.
//
// Usage:
//
//	recdb-server -dir /tmp/recdb -load -metrics-addr 127.0.0.1:7426
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"recdb"
	"recdb/internal/dataset"
	"recdb/internal/persist"
	"recdb/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7425", "TCP address to listen on (port 0 picks a free port)")
		dir          = flag.String("dir", "", "durable home directory: recover it if it exists, create it otherwise (empty = in-memory)")
		load         = flag.Bool("load", false, "seed the database with the -dataset synthetic dataset before serving")
		datasetName  = flag.String("dataset", "movielens", "dataset -load seeds: movielens, ldos, or yelp")
		scale        = flag.Float64("scale", 1.0, "scale factor for -load (0.1 = a tenth of the users and items)")
		syncEvery    = flag.Int("sync-every", 1, "WAL group-commit factor: fsync after n commits (1 = every commit)")
		syncInterval = flag.Duration("sync-interval", 2*time.Millisecond, "WAL group-commit latency bound (with -sync-every > 1)")
		metricsAddr  = flag.String("metrics-addr", "", "HTTP metrics address (/metrics, /metrics.json); empty = disabled")
		maxConns     = flag.Int("max-conns", 0, "connection limit (0 = server default)")
		queryTimeout = flag.Duration("query-timeout", 0, "per-statement execution bound (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight statements")
	)
	flag.Parse()
	if err := run(*addr, *dir, *load, *datasetName, *scale, *syncEvery, *syncInterval,
		*metricsAddr, *maxConns, *queryTimeout, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "recdb-server:", err)
		os.Exit(1)
	}
}

func run(addr, dir string, load bool, datasetName string, scale float64,
	syncEvery int, syncInterval time.Duration, metricsAddr string,
	maxConns int, queryTimeout, drainTimeout time.Duration) error {
	db, err := openDB(dir, syncEvery, syncInterval)
	if err != nil {
		return err
	}
	defer db.Close()

	if load {
		if err := seed(db, datasetName, scale); err != nil {
			return fmt.Errorf("seeding: %w", err)
		}
	}

	if metricsAddr != "" {
		bound, stop, err := server.ServeMetrics(db, metricsAddr)
		if err != nil {
			return err
		}
		defer func() { _ = stop() }()
		fmt.Printf("metrics on http://%s/metrics\n", bound)
	}

	srv := server.New(db, server.Options{
		MaxConns:     maxConns,
		QueryTimeout: queryTimeout,
		Logf:         func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
	})

	ln, err := listen(addr)
	if err != nil {
		return err
	}
	// Scripts (and the sharded bench harness) parse this line to learn
	// the bound port when -addr ends in :0.
	fmt.Printf("listening on %s\n", ln.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		fmt.Printf("%s: draining...\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-errc; err != nil {
			return err
		}
		fmt.Println("drained")
		return nil
	}
}

func listen(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("listen %s: %w", addr, err)
	}
	return ln, nil
}

func openDB(dir string, syncEvery int, syncInterval time.Duration) (*recdb.DB, error) {
	opts := []recdb.Option{
		recdb.WithWALSyncEvery(syncEvery),
		recdb.WithWALSyncInterval(syncInterval),
	}
	if dir == "" {
		return recdb.Open(opts...), nil
	}
	db, err := recdb.OpenDir(dir, opts...)
	if errors.Is(err, persist.ErrNoSnapshot) {
		// A fresh home: checkpoint an empty database there, which also
		// attaches the WAL so everything from here on is durable.
		db = recdb.Open(opts...)
		if err := db.SaveTo(dir); err != nil {
			db.Close()
			return nil, fmt.Errorf("creating %s: %w", dir, err)
		}
		return db, nil
	}
	if err != nil {
		return nil, fmt.Errorf("opening %s: %w", dir, err)
	}
	return db, nil
}

// seed imports a synthetic dataset through the engine (bypassing the
// WAL) and, on a durable home, checkpoints it so the import survives a
// crash or plain exit.
func seed(db *recdb.DB, name string, scale float64) error {
	var spec dataset.Spec
	switch name {
	case "movielens":
		spec = dataset.MovieLens
	case "ldos":
		spec = dataset.LDOS
	case "yelp":
		spec = dataset.Yelp
	default:
		return fmt.Errorf("unknown dataset %q (movielens, ldos, yelp)", name)
	}
	if scale != 1.0 {
		spec = spec.Scaled(scale)
	}
	d := dataset.Generate(spec)
	if err := dataset.Load(db.Engine(), d); err != nil {
		return err
	}
	fmt.Printf("loaded %s\n", d.Describe())
	if info := db.Durability(); info.Attached {
		if err := db.SaveTo(info.Dir); err != nil {
			return fmt.Errorf("checkpointing import: %w", err)
		}
	}
	return nil
}
