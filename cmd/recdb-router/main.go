// Command recdb-router fronts a fleet of recdb-server shards with one
// wire-protocol endpoint (DESIGN.md §14). User-keyed statements route
// to the shard owning the user on a consistent-hash ring; DDL and model
// builds replicate to every shard; cross-shard reads scatter-gather
// with an ordered merge. The router drains gracefully on SIGINT/
// SIGTERM: in-flight statements finish before exit.
//
// Usage:
//
//	recdb-router -addr 127.0.0.1:7430 -shards 127.0.0.1:7425,127.0.0.1:7427
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"recdb/internal/shard"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7430", "TCP address to listen on (port 0 picks a free port)")
		shards       = flag.String("shards", "", "comma-separated backend recdb-server addresses, in ring order (required)")
		userCol      = flag.String("user-col", "uid", "user-key column statements are partitioned on")
		userTables   = flag.String("user-tables", "", "comma-separated tables known to carry the user column (CREATE TABLE through the router supersedes this)")
		poolSize     = flag.Int("pool-size", 0, "pipelined connections per shard (0 = default)")
		retries      = flag.Int("retries", 0, "retry attempts per shard before shard_down (0 = default)")
		metricsAddr  = flag.String("metrics-addr", "", "HTTP metrics address (/metrics, /metrics.json); empty = disabled")
		maxConns     = flag.Int("max-conns", 0, "client connection limit (0 = default)")
		queryTimeout = flag.Duration("query-timeout", 0, "per-statement bound, fan-out included (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight statements")
	)
	flag.Parse()
	if err := run(*addr, *shards, *userCol, *userTables, *poolSize, *retries,
		*metricsAddr, *maxConns, *queryTimeout, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "recdb-router:", err)
		os.Exit(1)
	}
}

func run(addr, shards, userCol, userTables string, poolSize, retries int,
	metricsAddr string, maxConns int, queryTimeout, drainTimeout time.Duration) error {
	backends := splitList(shards)
	if len(backends) == 0 {
		return fmt.Errorf("-shards is required (comma-separated host:port list)")
	}

	r, err := shard.New(shard.Options{
		Shards:       backends,
		UserCol:      userCol,
		UserTables:   splitList(userTables),
		PoolSize:     poolSize,
		Retries:      retries,
		MaxConns:     maxConns,
		QueryTimeout: queryTimeout,
		Logf:         func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
	})
	if err != nil {
		return err
	}

	if metricsAddr != "" {
		bound, stop, err := r.ServeMetrics(metricsAddr)
		if err != nil {
			return err
		}
		defer func() { _ = stop() }()
		fmt.Printf("metrics on http://%s/metrics\n", bound)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", addr, err)
	}
	// Scripts (and the sharded bench harness) parse this line to learn
	// the bound port when -addr ends in :0.
	fmt.Printf("listening on %s\n", ln.Addr())
	fmt.Printf("routing %d shards: %s\n", len(backends), strings.Join(backends, ", "))

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- r.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		fmt.Printf("%s: draining...\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := r.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-errc; err != nil {
			return err
		}
		fmt.Println("drained")
		return nil
	}
}

// splitList parses a comma-separated flag into its non-empty entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
