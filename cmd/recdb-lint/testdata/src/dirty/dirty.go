// Package dirty trips a deterministic, known set of analyzers.
package dirty

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int
}

func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *Counter) Peek() int {
	return c.n
}
