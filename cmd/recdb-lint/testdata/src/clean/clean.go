// Package clean holds code every analyzer accepts.
package clean

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int
}

func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *Counter) Get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}
