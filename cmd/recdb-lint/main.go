// Command recdb-lint runs the RecDB static-analysis suite over module
// packages and exits non-zero if any invariant violation is found.
//
// Usage:
//
//	recdb-lint [-list] [-json] [packages]
//
// Packages are directories or "dir/..." patterns; the default is ./...
// relative to the current directory. Findings print one per line in
// file:line:col: analyzer: message form, sorted, so the output is stable
// across runs and machines; -json switches to a machine-readable array of
// findings on stdout for CI tooling. Type-check errors in analyzed
// packages are reported as warnings on stderr but do not fail the run:
// the analyzers work with whatever type information was recovered.
//
// Exit codes: 0 when no findings, 1 when findings were reported, 2 on a
// usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"recdb/internal/analysis"
	"recdb/internal/analysis/passes"
)

func main() {
	var opts options
	flag.BoolVar(&opts.list, "list", false, "list registered analyzers and exit")
	flag.BoolVar(&opts.jsonOut, "json", false, "emit findings as a JSON array on stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: recdb-lint [-list] [-json] [packages]\n\nAnalyzers:\n")
		for _, a := range passes.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	os.Exit(run(opts, flag.Args(), os.Stdout, os.Stderr))
}

type options struct {
	list    bool
	jsonOut bool
}

// jsonFinding is the machine-readable shape of one diagnostic. Fields are
// stable: CI tooling depends on them.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// run executes the lint with the driver's exit-code contract:
// 0 clean, 1 findings, 2 usage or load error.
func run(opts options, patterns []string, stdout, stderr io.Writer) int {
	if opts.list {
		for _, a := range passes.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(stderr, "recdb-lint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "recdb-lint: %v\n", err)
		return 2
	}
	for _, p := range pkgs {
		for _, e := range p.Errors {
			fmt.Fprintf(stderr, "recdb-lint: warning: %s: %v\n", p.Path, e)
		}
	}
	diags, err := analysis.Run(pkgs, passes.All())
	if err != nil {
		fmt.Fprintf(stderr, "recdb-lint: %v\n", err)
		return 2
	}
	if opts.jsonOut {
		findings := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, jsonFinding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "recdb-lint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "recdb-lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
