// Command recdb-lint runs the RecDB static-analysis suite (pinunpin,
// closecheck, locksafe, errwrap, nopanic) over module packages and exits
// non-zero if any invariant violation is found.
//
// Usage:
//
//	recdb-lint [-list] [packages]
//
// Packages are directories or "dir/..." patterns; the default is ./...
// relative to the current directory. Findings print one per line in
// file:line:col: analyzer: message form, sorted, so the output is stable
// across runs and machines. Type-check errors in analyzed packages are
// reported as warnings on stderr but do not fail the run: the analyzers
// work with whatever type information was recovered.
package main

import (
	"flag"
	"fmt"
	"os"

	"recdb/internal/analysis"
	"recdb/internal/analysis/passes"
)

func main() {
	list := flag.Bool("list", false, "list registered analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: recdb-lint [-list] [packages]\n\nAnalyzers:\n")
		for _, a := range passes.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range passes.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	os.Exit(run(patterns))
}

func run(patterns []string) int {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "recdb-lint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "recdb-lint: %v\n", err)
		return 2
	}
	for _, p := range pkgs {
		for _, e := range p.Errors {
			fmt.Fprintf(os.Stderr, "recdb-lint: warning: %s: %v\n", p.Path, e)
		}
	}
	diags, err := analysis.Run(pkgs, passes.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "recdb-lint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "recdb-lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
