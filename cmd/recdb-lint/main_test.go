package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// lint runs the driver in-process against testdata fixture packages.
func lint(t *testing.T, opts options, patterns ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(opts, patterns, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestCleanExitsZero(t *testing.T) {
	code, out, _ := lint(t, options{}, "./testdata/src/clean")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; output:\n%s", code, out)
	}
	if out != "" {
		t.Errorf("clean run must print nothing, got:\n%s", out)
	}
}

func TestFindingsExitOne(t *testing.T) {
	code, out, stderr := lint(t, options{}, "./testdata/src/dirty")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(out, "locksafe") || !strings.Contains(out, "dirty.go") {
		t.Errorf("findings must name the analyzer and file:\n%s", out)
	}
	if !strings.Contains(stderr, "finding(s)") {
		t.Errorf("summary goes to stderr, got:\n%s", stderr)
	}
}

func TestLoadErrorExitsTwo(t *testing.T) {
	code, _, stderr := lint(t, options{}, "./testdata/src/no-such-package")
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr:\n%s", code, stderr)
	}
}

// TestJSONGolden pins the machine-readable format: an array of findings
// with stable field names, indented, deterministic order.
func TestJSONGolden(t *testing.T) {
	code, out, _ := lint(t, options{jsonOut: true}, "./testdata/src/dirty")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatalf("output is not a JSON findings array: %v\n%s", err, out)
	}
	if len(findings) == 0 {
		t.Fatal("dirty fixture must yield findings")
	}
	f := findings[0]
	if f.Analyzer != "locksafe" || !strings.HasSuffix(f.File, "dirty.go") || f.Line == 0 || f.Column == 0 {
		t.Errorf("unexpected first finding: %+v", f)
	}
	if !strings.Contains(f.Message, "without holding") {
		t.Errorf("message = %q, want guarded-field diagnostic", f.Message)
	}
}

func TestJSONCleanIsEmptyArray(t *testing.T) {
	code, out, _ := lint(t, options{jsonOut: true}, "./testdata/src/clean")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if strings.TrimSpace(out) != "[]" {
		t.Errorf("clean JSON output = %q, want []", out)
	}
}

// TestListNamesAllAnalyzers pins the registry: all nine analyzers, one
// per line, in stable order.
func TestListNamesAllAnalyzers(t *testing.T) {
	code, out, _ := lint(t, options{list: true})
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	want := []string{
		"atomicfield", "closecheck", "deferloop", "errwrap", "lockorder",
		"locksafe", "nopanic", "pinunpin", "walorder",
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != len(want) {
		t.Fatalf("listed %d analyzers, want %d:\n%s", len(lines), len(want), out)
	}
	for i, name := range want {
		if !strings.HasPrefix(lines[i], name) {
			t.Errorf("line %d = %q, want prefix %q", i, lines[i], name)
		}
	}
}
