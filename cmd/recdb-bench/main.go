// Command recdb-bench regenerates every table and figure of the paper's
// evaluation (§VI) plus the ablation studies listed in DESIGN.md, printing
// each as a text (or Markdown) table.
//
//	recdb-bench                      # all experiments at defaults
//	recdb-bench -exp fig6,fig10      # a subset
//	recdb-bench -scale 0.25         # scaled-down datasets (quick run)
//	recdb-bench -neighborhood 0      # full similarity lists (paper setting)
//	recdb-bench -md                  # Markdown output for EXPERIMENTS.md
//	recdb-bench -exp scaling -workers 1,2,4 -json BENCH_build.json
//
// Experiment ids: table2, fig6, fig7, fig8, fig9, fig10, fig11, fig12,
// ablations (or individual a1..a6), scaling, durability, metrics, serve,
// ann, sharded, all.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"recdb/internal/bench"
	"recdb/internal/bench/serve"
	"recdb/internal/bench/sharded"
	"recdb/internal/dataset"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids")
	scale := flag.Float64("scale", 1.0, "dataset scale factor (1.0 = the paper's sizes)")
	neighborhood := flag.Int("neighborhood", 64, "similarity-list cap (0 = full lists, the paper's setting; 64 keeps full-scale OnTopDB runs tractable)")
	reps := flag.Int("reps", 3, "repetitions per RecDB-side measurement")
	md := flag.Bool("md", false, "emit Markdown tables")
	workers := flag.String("workers", "1,2,4", "worker counts for the scaling experiment")
	connCounts := flag.String("conns", "1,8,64", "connection counts for the serve experiment")
	mix := flag.String("mix", "100/0", "read/write percent mixes for the serve experiment (e.g. 100/0,90/10)")
	commits := flag.Int("commits", 2000, "statements per phase of the durability experiment")
	annScaleList := flag.String("ann-scales", "0.25,1.0", "dataset scale factors for the ann experiment's size axis")
	shardList := flag.String("shard-counts", "1,2,4", "shard counts for the sharded experiment")
	jsonPath := flag.String("json", "", "also write the result tables as JSON to this file")
	flag.Parse()

	workerCounts, err := parseWorkers(*workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "recdb-bench: -workers: %v\n", err)
		os.Exit(2)
	}
	conns, err := parseWorkers(*connCounts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "recdb-bench: -conns: %v\n", err)
		os.Exit(2)
	}
	mixes, err := serve.ParseMixes(*mix)
	if err != nil {
		fmt.Fprintf(os.Stderr, "recdb-bench: -mix: %v\n", err)
		os.Exit(2)
	}
	annScales, err := parseScales(*annScaleList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "recdb-bench: -ann-scales: %v\n", err)
		os.Exit(2)
	}
	shardCounts, err := parseWorkers(*shardList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "recdb-bench: -shard-counts: %v\n", err)
		os.Exit(2)
	}

	bench.Reps = *reps
	spec := func(s dataset.Spec) dataset.Spec {
		if *scale != 1.0 {
			return s.Scaled(*scale)
		}
		return s
	}

	type experiment struct {
		id  string
		run func() (bench.Table, error)
	}
	experiments := []experiment{
		{"table2", func() (bench.Table, error) { return bench.RunTable2(*scale, *neighborhood) }},
		{"fig6", func() (bench.Table, error) {
			return bench.RunSelectivity("Fig. 6", spec(dataset.MovieLens), *neighborhood)
		}},
		{"fig7", func() (bench.Table, error) {
			return bench.RunSelectivity("Fig. 7", spec(dataset.Yelp), *neighborhood)
		}},
		{"fig8", func() (bench.Table, error) {
			return bench.RunJoin("Fig. 8", spec(dataset.MovieLens), *neighborhood)
		}},
		{"fig9", func() (bench.Table, error) {
			return bench.RunJoin("Fig. 9", spec(dataset.LDOS), *neighborhood)
		}},
		{"fig10", func() (bench.Table, error) {
			return bench.RunTopK("Fig. 10", spec(dataset.MovieLens), *neighborhood)
		}},
		{"fig11", func() (bench.Table, error) {
			return bench.RunTopK("Fig. 11", spec(dataset.LDOS), *neighborhood)
		}},
		{"fig12", func() (bench.Table, error) {
			return bench.RunTopK("Fig. 12", spec(dataset.Yelp), *neighborhood)
		}},
		{"a1", func() (bench.Table, error) {
			return bench.RunAblationFilterPushdown(spec(dataset.MovieLens), *neighborhood)
		}},
		{"a2", func() (bench.Table, error) {
			return bench.RunAblationJoinRecommend(spec(dataset.MovieLens), *neighborhood)
		}},
		{"a3", func() (bench.Table, error) {
			return bench.RunAblationRecScoreIndex(spec(dataset.MovieLens), *neighborhood)
		}},
		{"a4", func() (bench.Table, error) {
			return bench.RunAblationNeighborhood(spec(dataset.MovieLens))
		}},
		{"a5", func() (bench.Table, error) {
			return bench.RunAblationHotness(spec(dataset.MovieLens), *neighborhood)
		}},
		{"a6", func() (bench.Table, error) {
			return bench.RunPageIO(spec(dataset.MovieLens), *neighborhood)
		}},
		{"scaling", func() (bench.Table, error) {
			return bench.RunScaling(spec(dataset.MovieLens), *neighborhood, workerCounts)
		}},
		{"durability", func() (bench.Table, error) {
			return bench.RunDurability(*commits)
		}},
		{"metrics", func() (bench.Table, error) {
			return bench.RunMetricsOverhead(spec(dataset.MovieLens), *neighborhood)
		}},
		{"serve", func() (bench.Table, error) {
			return serve.Run(*scale, conns, mixes)
		}},
		{"ann", func() (bench.Table, error) {
			return bench.RunANN(dataset.MovieLens, annScales, 10)
		}},
		{"sharded", func() (bench.Table, error) {
			return sharded.Run(shardCounts)
		}},
	}

	wanted := map[string]bool{}
	for _, id := range strings.Split(*exp, ",") {
		id = strings.TrimSpace(strings.ToLower(id))
		switch id {
		case "all":
			for _, e := range experiments {
				wanted[e.id] = true
			}
		case "ablations":
			for _, e := range experiments {
				if strings.HasPrefix(e.id, "a") && len(e.id) == 2 {
					wanted[e.id] = true
				}
			}
		case "":
		default:
			wanted[id] = true
		}
	}

	var tables []bench.Table
	for _, e := range experiments {
		if !wanted[e.id] {
			continue
		}
		start := time.Now()
		tab, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "recdb-bench: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		tables = append(tables, tab)
		render(tab, *md)
		fmt.Printf("  (experiment wall time: %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
	if len(tables) == 0 {
		fmt.Fprintf(os.Stderr, "recdb-bench: no experiment matched %q\n", *exp)
		os.Exit(2)
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, tables); err != nil {
			fmt.Fprintf(os.Stderr, "recdb-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}

func parseScales(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f, err := strconv.ParseFloat(part, 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("scales must be positive numbers, got %q", part)
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no scales given")
	}
	return out, nil
}

func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("worker counts must be positive integers, got %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no worker counts given")
	}
	return out, nil
}

func writeJSON(path string, tables []bench.Table) error {
	data, err := json.MarshalIndent(tables, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func render(t bench.Table, md bool) {
	fmt.Printf("== %s — %s ==\n", t.ID, t.Title)
	if md {
		fmt.Printf("| %s |\n", strings.Join(t.Header, " | "))
		seps := make([]string, len(t.Header))
		for i := range seps {
			seps[i] = "---"
		}
		fmt.Printf("|%s|\n", strings.Join(seps, "|"))
		for _, row := range t.Rows {
			fmt.Printf("| %s |\n", strings.Join(row, " | "))
		}
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(t.Header, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, "\t"))
	}
	_ = w.Flush() // best-effort table output to stdout
}
