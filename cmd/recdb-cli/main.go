// Command recdb-cli is an interactive SQL shell for RecDB-Go. It supports
// the full dialect including CREATE/DROP RECOMMENDER and the RECOMMEND
// clause, plus a few backslash meta-commands:
//
//	\d                     list tables
//	\rec                   list recommenders
//	\materialize NAME      pre-compute the RecScoreIndex for a recommender
//	\maintain NAME         run one cache-maintenance pass (Algorithm 4)
//	\save DIR              snapshot the database to DIR and keep it durable
//	                       there (later commits go through DIR's write-ahead
//	                       log; -open replays them)
//	\health                recommender rebuild health (failures, backoff)
//	\evaluate NAME [K]     hold out every K-th rating (default 10), retrain,
//	                       and report RMSE/MAE
//	\stats                 show page-I/O counters
//	\metrics               show the full engine metrics snapshot
//	\timing                toggle per-statement timing
//	\q                     quit
//
// EXPLAIN ANALYZE SELECT ... runs the query and annotates the plan with
// actual per-operator rows, loops, wall time, and buffer-pool hits/misses.
//
// Flags can preload a synthetic dataset:
//
//	recdb-cli -dataset movielens -scale 0.25
//
// With -connect the shell speaks to a running recdb-server over the wire
// protocol instead of embedding a database; SQL behaves identically, and
// the meta-commands that need in-process access (\d, \rec, ...) report
// themselves unavailable:
//
//	recdb-cli -connect 127.0.0.1:7425
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"recdb"
	"recdb/client"
	"recdb/internal/dataset"
	"recdb/internal/engine"
	"recdb/internal/rec"
)

func main() {
	datasetName := flag.String("dataset", "", "preload a synthetic dataset: movielens, ldos, or yelp")
	scale := flag.Float64("scale", 1.0, "dataset scale factor")
	script := flag.String("f", "", "run a SQL script file and exit")
	open := flag.String("open", "", "open a database snapshot directory (see \\save)")
	loadCSV := flag.String("load", "", "import a CSV dataset directory (as written by recdb-datagen)")
	connect := flag.String("connect", "", "connect to a recdb-server at host:port instead of embedding")
	flag.Parse()

	if *connect != "" {
		if *datasetName != "" || *open != "" || *loadCSV != "" {
			fatal(fmt.Errorf("-dataset, -open, and -load need an embedded database; they cannot be combined with -connect"))
		}
		c, err := client.Dial(*connect)
		if err != nil {
			fatal(err)
		}
		r := &remoteRunner{c: c}
		defer func() { _ = c.Close() }()
		if *script != "" {
			content, err := os.ReadFile(*script)
			if err != nil {
				fatal(err)
			}
			if err := runScript(r, string(content)); err != nil {
				fatal(err)
			}
			return
		}
		fmt.Printf("connected to %s at %s (session %d) — end statements with ';', \\q to quit\n",
			c.Server(), *connect, c.SessionID())
		repl(r)
		return
	}

	var db *recdb.DB
	if *open != "" {
		opened, err := recdb.OpenDir(*open)
		if err != nil {
			fatal(err)
		}
		db = opened
		d := db.Durability()
		fmt.Printf("opened %s (generation %d, WAL seq %d", *open, d.Generation, d.WALSeq)
		if d.SkippedGenerations > 0 {
			fmt.Printf(", %d corrupt generation(s) skipped", d.SkippedGenerations)
		}
		fmt.Println(")")
	} else {
		db = recdb.Open()
	}
	defer db.Close()

	if err := preload(db, *datasetName, *scale, *loadCSV); err != nil {
		fatal(err)
	}

	// Close the session before db.Close: a transaction left open at exit
	// holds the database's shared lock, and Close takes it exclusively.
	r := newLocalRunner(db)
	defer r.close()

	if *script != "" {
		content, err := os.ReadFile(*script)
		if err != nil {
			fatal(err)
		}
		if err := runScript(r, string(content)); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Println("RecDB-Go shell — end statements with ';', \\q to quit, \\d to list tables")
	repl(r)
}

// runner is the statement/meta execution backend behind the REPL and -f
// scripts: embedded (localRunner) or a recdb-server session
// (remoteRunner). Both share the same line-assembly code path.
type runner interface {
	// statement executes one SQL statement or script chunk and prints
	// its result.
	statement(input string) error
	// meta handles a backslash command; it returns true to quit.
	meta(cmd string) bool
}

// localRunner executes against the embedded database through one
// long-lived Session, so an interactive BEGIN stays open across input
// lines until COMMIT or ROLLBACK.
type localRunner struct {
	db   *recdb.DB
	sess *recdb.Session
}

func newLocalRunner(db *recdb.DB) *localRunner {
	return &localRunner{db: db, sess: db.NewSession()}
}

func (l *localRunner) statement(input string) error { return runStatement(l.db, l.sess, input) }
func (l *localRunner) meta(cmd string) bool         { return meta(l.db, cmd) }

// close ends the session, rolling back a transaction the script or
// REPL left open — with a notice, since the user may not have meant to
// abandon it.
func (l *localRunner) close() {
	if l.sess.InTransaction() {
		fmt.Println("rolled back transaction left open at exit")
	}
	_ = l.sess.Close()
}

// remoteRunner executes against a recdb-server session.
type remoteRunner struct{ c *client.Conn }

func (r *remoteRunner) statement(input string) error {
	trimmed := strings.TrimSpace(input)
	if trimmed == "" {
		return nil
	}
	ctx := context.Background()
	if isQuery(trimmed) {
		rows, err := r.c.Query(ctx, strings.TrimSuffix(trimmed, ";"))
		if err != nil {
			return err
		}
		printRemoteRows(rows)
		return nil
	}
	res, err := r.c.Exec(ctx, input)
	if err != nil {
		return err
	}
	fmt.Printf("OK (%d rows affected)\n", res.RowsAffected)
	return nil
}

func (r *remoteRunner) meta(cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\q", "\\quit":
		return true
	case "\\timing":
		timing = !timing
		fmt.Printf("timing is %v\n", timing)
	case "\\ping":
		start := time.Now()
		if err := r.c.Ping(context.Background()); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		} else {
			fmt.Printf("pong in %v\n", time.Since(start).Round(time.Microsecond))
		}
	default:
		fmt.Fprintf(os.Stderr, "%s needs in-process access and is unavailable over -connect (\\q, \\timing, \\ping work remotely)\n", fields[0])
	}
	return false
}

func printRemoteRows(rows *client.Rows) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(rows.Columns(), "\t"))
	for rows.Next() {
		row := rows.Row()
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		fmt.Fprintln(w, strings.Join(cells, "\t"))
	}
	_ = w.Flush() // best-effort table output to stdout
	plan := ""
	if rows.Strategy() != "" {
		plan = fmt.Sprintf(" [plan: %s]", rows.Strategy())
	}
	fmt.Printf("(%d rows)%s\n", rows.Len(), plan)
}

// preload imports the -dataset and/or -load data. Both importers write
// through the engine directly, bypassing the write-ahead log, so on a
// durably opened database (-open) a successful import is checkpointed
// into a fresh snapshot generation — otherwise a crash or plain exit
// would silently lose everything just imported.
func preload(db *recdb.DB, datasetName string, scale float64, loadCSV string) error {
	eng := db.Engine()
	imported := false

	if datasetName != "" {
		spec, err := specFor(datasetName)
		if err != nil {
			return err
		}
		if scale != 1.0 {
			spec = spec.Scaled(scale)
		}
		d := dataset.Generate(spec)
		if err := dataset.Load(eng, d); err != nil {
			return err
		}
		fmt.Printf("loaded %s into tables users, items, ratings%s\n",
			d.Describe(), geoNote(spec.Geo))
		imported = true
	}

	if loadCSV != "" {
		d, err := dataset.LoadCSVDir(eng, loadCSV)
		if err != nil {
			return err
		}
		fmt.Printf("imported %s from %s\n", d.Describe(), loadCSV)
		imported = true
	}

	if d := db.Durability(); imported && d.Attached {
		if err := db.SaveTo(d.Dir); err != nil {
			return fmt.Errorf("checkpointing imported data: %w", err)
		}
		fmt.Printf("checkpointed import into %s (generation %d)\n",
			d.Dir, db.Durability().Generation)
	}
	return nil
}

// runScript runs a -f script: lines starting with \ are meta-commands,
// everything else accumulates into SQL statements, exactly as in the REPL.
func runScript(r runner, content string) error {
	var buf strings.Builder
	for _, line := range strings.Split(content, "\n") {
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if r.meta(trimmed) {
				return nil
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.Contains(line, ";") {
			stmt := buf.String()
			buf.Reset()
			if err := r.statement(stmt); err != nil {
				return err
			}
		}
	}
	if strings.TrimSpace(buf.String()) != "" {
		return r.statement(buf.String())
	}
	return nil
}

func geoNote(geo bool) string {
	if geo {
		return " (and cities)"
	}
	return ""
}

func specFor(name string) (dataset.Spec, error) {
	switch strings.ToLower(name) {
	case "movielens":
		return dataset.MovieLens, nil
	case "ldos", "ldos-comoda":
		return dataset.LDOS, nil
	case "yelp":
		return dataset.Yelp, nil
	default:
		return dataset.Spec{}, fmt.Errorf("unknown dataset %q (movielens, ldos, yelp)", name)
	}
}

// timing is toggled by the \timing meta-command.
var timing bool

func repl(r runner) {
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "recdb> "
	for {
		fmt.Print(prompt)
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if r.meta(trimmed) {
				return
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.Contains(line, ";") {
			stmt := buf.String()
			buf.Reset()
			prompt = "recdb> "
			start := time.Now()
			if err := r.statement(stmt); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
			if timing {
				fmt.Printf("Time: %v\n", time.Since(start).Round(time.Microsecond))
			}
		} else {
			prompt = "   ... "
		}
	}
}

// meta handles backslash commands; it returns true to quit.
func meta(db *recdb.DB, cmd string) bool {
	eng := db.Engine()
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\q", "\\quit":
		return true
	case "\\d":
		for _, name := range eng.Catalog().Names() {
			t, err := eng.Catalog().Get(name)
			if err != nil {
				continue
			}
			fmt.Printf("%s (%d rows, %d pages)\n", name, t.Heap.NumRows(), t.Heap.NumPages())
		}
	case "\\rec":
		for _, r := range eng.Recommenders().List() {
			fmt.Printf("%s ON %s USING %s (built in %v, %d rebuilds)\n",
				r.Name, r.Table, r.Algo, r.BuildTime().Round(1000), r.Rebuilds())
		}
	case "\\materialize":
		if len(fields) != 2 {
			fmt.Fprintln(os.Stderr, "usage: \\materialize RECOMMENDER")
			break
		}
		if err := eng.Materialize(fields[1]); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		} else {
			fmt.Println("materialized")
		}
	case "\\maintain":
		if len(fields) != 2 {
			fmt.Fprintln(os.Stderr, "usage: \\maintain RECOMMENDER")
			break
		}
		dec, err := eng.RunCacheMaintenance(fields[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		} else {
			fmt.Printf("admitted %d, evicted %d\n", dec.Admitted, dec.Evicted)
		}
	case "\\save":
		if len(fields) != 2 {
			fmt.Fprintln(os.Stderr, "usage: \\save DIR")
			break
		}
		if err := db.SaveTo(fields[1]); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		} else {
			d := db.Durability()
			fmt.Printf("saved to %s (generation %d); commits now go through its write-ahead log\n",
				fields[1], d.Generation)
		}
	case "\\health":
		hs := db.Health()
		if len(hs) == 0 {
			fmt.Println("no recommenders")
			break
		}
		for _, h := range hs {
			status := "healthy"
			if !h.Healthy {
				status = fmt.Sprintf("DEGRADED: %s (retry after %s)",
					h.LastError, h.NextRetry.Format(time.TimeOnly))
			}
			fmt.Printf("%s: %d rebuilds, %d pending, %d failed — %s\n",
				h.Name, h.Rebuilds, h.Pending, h.Failures, status)
		}
	case "\\evaluate":
		if len(fields) < 2 || len(fields) > 3 {
			fmt.Fprintln(os.Stderr, "usage: \\evaluate RECOMMENDER [K]")
			break
		}
		k := 10
		if len(fields) == 3 {
			v, err := strconv.Atoi(fields[2])
			if err != nil || v < 2 {
				fmt.Fprintln(os.Stderr, "K must be an integer >= 2")
				break
			}
			k = v
		}
		if err := evaluate(eng, fields[1], k); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	case "\\timing":
		timing = !timing
		fmt.Printf("timing is %v\n", timing)
	case "\\stats":
		r, m, w := eng.Stats().Snapshot()
		fmt.Printf("page reads: %d  buffer misses: %d  page writes: %d\n", r, m, w)
	case "\\metrics":
		fmt.Print(db.Metrics().String())
	default:
		fmt.Fprintf(os.Stderr, "unknown command %s\n", fields[0])
	}
	return false
}

// evaluate retrains the named recommender's algorithm on a train split
// and reports held-out accuracy.
func evaluate(eng *engine.Engine, name string, k int) error {
	r, ok := eng.Recommenders().Get(name)
	if !ok {
		return fmt.Errorf("no recommender %q", name)
	}
	ratings, err := eng.Recommenders().RatingsOf(r)
	if err != nil {
		return err
	}
	train, test := rec.SplitRatings(ratings, k)
	if len(test) == 0 {
		return fmt.Errorf("not enough ratings to hold out 1/%d", k)
	}
	model, err := rec.Build(train, r.Algo, rec.BuildOptions{SVDSeed: 1})
	if err != nil {
		return err
	}
	ev := rec.Evaluate(model, test)
	fmt.Printf("%s (%v): RMSE %.4f  MAE %.4f  (%d scorable, %d unscorable of %d held out)\n",
		r.Name, r.Algo, ev.RMSE, ev.MAE, ev.Scorable, ev.Unscorable, len(test))
	return nil
}

func runStatement(db *recdb.DB, sess *recdb.Session, input string) error {
	trimmed := strings.TrimSpace(input)
	if trimmed == "" {
		return nil
	}
	if isQuery(trimmed) {
		// A single SELECT or EXPLAIN prints its rows.
		stmtText := strings.TrimSuffix(trimmed, ";")
		res, err := db.Engine().Query(stmtText)
		if err != nil {
			return err
		}
		printResult(res)
		return nil
	}
	r, err := sess.Exec(input)
	if err != nil {
		return err
	}
	fmt.Printf("OK (%d rows affected)\n", r.RowsAffected)
	return nil
}

func isQuery(s string) bool {
	if strings.Count(s, ";") > 1 {
		return false // multi-statement scripts go through ExecScript
	}
	return (len(s) >= 6 && strings.EqualFold(s[:6], "SELECT")) ||
		(len(s) >= 7 && strings.EqualFold(s[:7], "EXPLAIN"))
}

func printResult(res *engine.QueryResult) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	var header []string
	for _, c := range res.Schema.Columns {
		header = append(header, c.QualifiedName())
	}
	fmt.Fprintln(w, strings.Join(header, "\t"))
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		fmt.Fprintln(w, strings.Join(cells, "\t"))
	}
	_ = w.Flush() // best-effort table output to stdout
	plan := ""
	if res.Explain != nil && res.Explain.Strategy != "" {
		plan = fmt.Sprintf(" [plan: %s]", res.Explain.Strategy)
	}
	fmt.Printf("(%d rows)%s\n", len(res.Rows), plan)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "recdb-cli:", err)
	os.Exit(1)
}
