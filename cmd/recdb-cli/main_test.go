package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"recdb"
)

// capture redirects stdout while fn runs and returns what it printed.
func capture(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var sb strings.Builder
		buf := make([]byte, 1<<20)
		for {
			n, err := r.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- sb.String()
	}()
	fn()
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	return out
}

func testDB(t *testing.T) *recdb.DB {
	t.Helper()
	db := recdb.Open()
	t.Cleanup(db.Close)
	if _, err := db.ExecScript(`
		CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT);
		INSERT INTO ratings VALUES (1,1,5),(1,2,3),(2,1,4),(2,3,2),(3,2,1);
		CREATE RECOMMENDER CliRec ON ratings
			USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF;
	`); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestSpecFor(t *testing.T) {
	for _, name := range []string{"movielens", "LDOS", "yelp", "ldos-comoda"} {
		if _, err := specFor(name); err != nil {
			t.Errorf("specFor(%q): %v", name, err)
		}
	}
	if _, err := specFor("netflix"); err == nil {
		t.Error("unknown dataset should fail")
	}
}

func TestIsQuery(t *testing.T) {
	cases := map[string]bool{
		"SELECT * FROM t":          true,
		"select * from t;":         true,
		"EXPLAIN SELECT a FROM t":  true,
		"explain select a from t":  true,
		"INSERT INTO t VALUES (1)": false,
		"CREATE TABLE t (a INT)":   false,
		"SELECT 1; SELECT 2;":      false,
	}
	for q, want := range cases {
		if isQuery(q) != want {
			t.Errorf("isQuery(%q) = %v, want %v", q, !want, want)
		}
	}
}

func TestRunStatementSelectPrintsRows(t *testing.T) {
	db := testDB(t)
	out := capture(t, func() {
		if err := runStatement(db, db.NewSession(), "SELECT uid, iid FROM ratings WHERE uid = 1 ORDER BY iid;"); err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(out, "(2 rows)") || !strings.Contains(out, "uid") {
		t.Fatalf("select output:\n%s", out)
	}
}

func TestRunStatementRecommendShowsPlan(t *testing.T) {
	db := testDB(t)
	out := capture(t, func() {
		if err := runStatement(db, db.NewSession(), `SELECT R.iid, R.ratingval FROM ratings R
			RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
			WHERE R.uid = 3`); err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(out, "[plan: FilterRecommend]") {
		t.Fatalf("plan tag missing:\n%s", out)
	}
}

func TestRunStatementExplain(t *testing.T) {
	db := testDB(t)
	out := capture(t, func() {
		if err := runStatement(db, db.NewSession(), `EXPLAIN SELECT uid FROM ratings WHERE uid = 1`); err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(out, "SeqScan on ratings") {
		t.Fatalf("explain output:\n%s", out)
	}
}

func TestRunStatementScript(t *testing.T) {
	db := testDB(t)
	out := capture(t, func() {
		if err := runStatement(db, db.NewSession(), "CREATE TABLE x (a INT); INSERT INTO x VALUES (1), (2);"); err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(out, "OK (2 rows affected)") {
		t.Fatalf("script output:\n%s", out)
	}
	if err := runStatement(db, db.NewSession(), "BROKEN;"); err == nil {
		t.Fatal("broken statement should error")
	}
	if err := runStatement(db, db.NewSession(), "   "); err != nil {
		t.Fatal("blank input should be a no-op")
	}
}

func TestMetaCommands(t *testing.T) {
	db := testDB(t)
	if meta(db, "\\q") != true {
		t.Fatal("\\q should quit")
	}
	out := capture(t, func() {
		if meta(db, "\\d") {
			t.Error("\\d should not quit")
		}
	})
	if !strings.Contains(out, "ratings") {
		t.Fatalf("\\d output:\n%s", out)
	}
	out = capture(t, func() { meta(db, "\\rec") })
	if !strings.Contains(out, "CliRec ON ratings USING ItemCosCF") {
		t.Fatalf("\\rec output:\n%s", out)
	}
	out = capture(t, func() { meta(db, "\\materialize CliRec") })
	if !strings.Contains(out, "materialized") {
		t.Fatalf("\\materialize output:\n%s", out)
	}
	out = capture(t, func() { meta(db, "\\maintain CliRec") })
	if !strings.Contains(out, "admitted") {
		t.Fatalf("\\maintain output:\n%s", out)
	}
	out = capture(t, func() { meta(db, "\\stats") })
	if !strings.Contains(out, "page reads:") {
		t.Fatalf("\\stats output:\n%s", out)
	}
	out = capture(t, func() { meta(db, "\\metrics") })
	for _, want := range []string{"exec.queries", "bufferpool.page_reads", "rec.builds"} {
		if !strings.Contains(out, want) {
			t.Fatalf("\\metrics output missing %q:\n%s", want, out)
		}
	}
	out = capture(t, func() {
		if err := runStatement(db, db.NewSession(), `EXPLAIN ANALYZE SELECT uid FROM ratings WHERE uid = 1`); err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(out, "actual rows=") || !strings.Contains(out, "Execution time:") {
		t.Fatalf("explain analyze output:\n%s", out)
	}
}

func TestMetaSaveRoundTrip(t *testing.T) {
	db := testDB(t)
	dir := filepath.Join(t.TempDir(), "snap")
	out := capture(t, func() { meta(db, "\\save "+dir) })
	if !strings.Contains(out, "saved to") {
		t.Fatalf("\\save output:\n%s", out)
	}
	// Commits after \save go through the directory's write-ahead log...
	if _, err := db.Exec("INSERT INTO ratings VALUES (9, 9, 4)"); err != nil {
		t.Fatal(err)
	}
	// ...and a reopen replays them on top of the snapshot.
	loaded, err := recdb.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	res, err := loaded.Engine().Query("SELECT COUNT(*) FROM ratings")
	if err != nil || res.Rows[0][0].Int() != 6 {
		t.Fatalf("reopened database: %v %v", res, err)
	}
}

// TestPreloadCheckpointsDurableImport opens a database durably, imports a
// dataset through preload, and verifies the import survives a reopen:
// the importers bypass the write-ahead log, so preload must checkpoint
// them on a durably opened database.
func TestPreloadCheckpointsDurableImport(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snap")
	seed := recdb.Open()
	seed.MustExec("CREATE TABLE marker (id INT PRIMARY KEY)")
	if err := seed.SaveTo(dir); err != nil {
		t.Fatal(err)
	}
	seed.Close()

	db, err := recdb.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := capture(t, func() {
		if err := preload(db, "movielens", 0.02, ""); err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(out, "checkpointed import into "+dir) {
		t.Fatalf("durable import not checkpointed:\n%s", out)
	}
	db.Close()

	// The imported rows are on disk, not just in memory.
	reopened, err := recdb.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	res, err := reopened.Engine().Query("SELECT COUNT(*) FROM ratings")
	if err != nil || res.Rows[0][0].Int() == 0 {
		t.Fatalf("imported ratings lost across reopen: %v %v", res, err)
	}

	// An in-memory database imports without checkpointing anywhere.
	mem := recdb.Open()
	defer mem.Close()
	out = capture(t, func() {
		if err := preload(mem, "movielens", 0.02, ""); err != nil {
			t.Error(err)
		}
	})
	if strings.Contains(out, "checkpointed") {
		t.Fatalf("in-memory import should not checkpoint:\n%s", out)
	}
}

func TestMetaEvaluate(t *testing.T) {
	db := recdb.Open()
	defer db.Close()
	if _, err := db.ExecScript(`CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT);`); err != nil {
		t.Fatal(err)
	}
	var rows []string
	for u := 1; u <= 25; u++ {
		for i := 1; i <= 30; i++ {
			if (u*31+i*17)%4 != 0 {
				continue
			}
			rows = append(rows, fmt.Sprintf("(%d, %d, %d)", u, i, 1+(u+i)%5))
		}
	}
	if _, err := db.Exec("INSERT INTO ratings VALUES " + strings.Join(rows, ", ")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE RECOMMENDER EvalRec ON ratings
		USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF`); err != nil {
		t.Fatal(err)
	}
	out := capture(t, func() { meta(db, "\\evaluate EvalRec 5") })
	if !strings.Contains(out, "RMSE") || !strings.Contains(out, "MAE") {
		t.Fatalf("\\evaluate output:\n%s", out)
	}
	if err := evaluate(db.Engine(), "missing", 5); err == nil {
		t.Fatal("missing recommender should fail")
	}
}
