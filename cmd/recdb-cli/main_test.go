package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"recdb/internal/engine"
	"recdb/internal/persist"
)

// capture redirects stdout while fn runs and returns what it printed.
func capture(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		buf := make([]byte, 1<<20)
		n, _ := r.Read(buf)
		done <- string(buf[:n])
	}()
	fn()
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	return out
}

func testEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e := engine.New(engine.Config{})
	if _, err := e.ExecScript(`
		CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT);
		INSERT INTO ratings VALUES (1,1,5),(1,2,3),(2,1,4),(2,3,2),(3,2,1);
		CREATE RECOMMENDER CliRec ON ratings
			USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF;
	`); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSpecFor(t *testing.T) {
	for _, name := range []string{"movielens", "LDOS", "yelp", "ldos-comoda"} {
		if _, err := specFor(name); err != nil {
			t.Errorf("specFor(%q): %v", name, err)
		}
	}
	if _, err := specFor("netflix"); err == nil {
		t.Error("unknown dataset should fail")
	}
}

func TestIsQuery(t *testing.T) {
	cases := map[string]bool{
		"SELECT * FROM t":          true,
		"select * from t;":         true,
		"EXPLAIN SELECT a FROM t":  true,
		"explain select a from t":  true,
		"INSERT INTO t VALUES (1)": false,
		"CREATE TABLE t (a INT)":   false,
		"SELECT 1; SELECT 2;":      false,
	}
	for q, want := range cases {
		if isQuery(q) != want {
			t.Errorf("isQuery(%q) = %v, want %v", q, !want, want)
		}
	}
}

func TestRunStatementSelectPrintsRows(t *testing.T) {
	e := testEngine(t)
	out := capture(t, func() {
		if err := runStatement(e, "SELECT uid, iid FROM ratings WHERE uid = 1 ORDER BY iid;"); err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(out, "(2 rows)") || !strings.Contains(out, "uid") {
		t.Fatalf("select output:\n%s", out)
	}
}

func TestRunStatementRecommendShowsPlan(t *testing.T) {
	e := testEngine(t)
	out := capture(t, func() {
		if err := runStatement(e, `SELECT R.iid, R.ratingval FROM ratings R
			RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
			WHERE R.uid = 3`); err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(out, "[plan: FilterRecommend]") {
		t.Fatalf("plan tag missing:\n%s", out)
	}
}

func TestRunStatementExplain(t *testing.T) {
	e := testEngine(t)
	out := capture(t, func() {
		if err := runStatement(e, `EXPLAIN SELECT uid FROM ratings WHERE uid = 1`); err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(out, "SeqScan on ratings") {
		t.Fatalf("explain output:\n%s", out)
	}
}

func TestRunStatementScript(t *testing.T) {
	e := testEngine(t)
	out := capture(t, func() {
		if err := runStatement(e, "CREATE TABLE x (a INT); INSERT INTO x VALUES (1), (2);"); err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(out, "OK (2 rows affected)") {
		t.Fatalf("script output:\n%s", out)
	}
	if err := runStatement(e, "BROKEN;"); err == nil {
		t.Fatal("broken statement should error")
	}
	if err := runStatement(e, "   "); err != nil {
		t.Fatal("blank input should be a no-op")
	}
}

func TestMetaCommands(t *testing.T) {
	e := testEngine(t)
	if meta(e, "\\q") != true {
		t.Fatal("\\q should quit")
	}
	out := capture(t, func() {
		if meta(e, "\\d") {
			t.Error("\\d should not quit")
		}
	})
	if !strings.Contains(out, "ratings") {
		t.Fatalf("\\d output:\n%s", out)
	}
	out = capture(t, func() { meta(e, "\\rec") })
	if !strings.Contains(out, "CliRec ON ratings USING ItemCosCF") {
		t.Fatalf("\\rec output:\n%s", out)
	}
	out = capture(t, func() { meta(e, "\\materialize CliRec") })
	if !strings.Contains(out, "materialized") {
		t.Fatalf("\\materialize output:\n%s", out)
	}
	out = capture(t, func() { meta(e, "\\maintain CliRec") })
	if !strings.Contains(out, "admitted") {
		t.Fatalf("\\maintain output:\n%s", out)
	}
	out = capture(t, func() { meta(e, "\\stats") })
	if !strings.Contains(out, "page reads:") {
		t.Fatalf("\\stats output:\n%s", out)
	}
}

func TestMetaSaveRoundTrip(t *testing.T) {
	e := testEngine(t)
	dir := filepath.Join(t.TempDir(), "snap")
	out := capture(t, func() { meta(e, "\\save "+dir) })
	if !strings.Contains(out, "saved to") {
		t.Fatalf("\\save output:\n%s", out)
	}
	loaded, err := persist.Load(dir, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := loaded.Query("SELECT COUNT(*) FROM ratings")
	if err != nil || res.Rows[0][0].Int() != 5 {
		t.Fatalf("loaded snapshot: %v %v", res, err)
	}
}

func TestMetaEvaluate(t *testing.T) {
	e := engine.New(engine.Config{})
	if _, err := e.ExecScript(`CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT);`); err != nil {
		t.Fatal(err)
	}
	var rows []string
	for u := 1; u <= 25; u++ {
		for i := 1; i <= 30; i++ {
			if (u*31+i*17)%4 != 0 {
				continue
			}
			rows = append(rows, fmt.Sprintf("(%d, %d, %d)", u, i, 1+(u+i)%5))
		}
	}
	if _, err := e.Exec("INSERT INTO ratings VALUES " + strings.Join(rows, ", ")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(`CREATE RECOMMENDER EvalRec ON ratings
		USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF`); err != nil {
		t.Fatal(err)
	}
	out := capture(t, func() { meta(e, "\\evaluate EvalRec 5") })
	if !strings.Contains(out, "RMSE") || !strings.Contains(out, "MAE") {
		t.Fatalf("\\evaluate output:\n%s", out)
	}
	if err := evaluate(e, "missing", 5); err == nil {
		t.Fatal("missing recommender should fail")
	}
}
