package main

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"testing"

	"recdb/internal/dataset"
)

func readCSV(t *testing.T, path string) [][]string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestWriteCSVDataset(t *testing.T) {
	dir := t.TempDir()
	spec := dataset.Yelp.Scaled(0.02)
	d := dataset.Generate(spec)

	// Reuse the writers exactly as main does.
	writeCSV(dir, "users.csv", [][]string{{"uid", "name", "city", "age", "gender"}}, func(emit func([]string)) {
		for _, u := range d.Users {
			emit([]string{"1", u.Name, u.City, "20", u.Gender})
		}
	})
	rows := readCSV(t, filepath.Join(dir, "users.csv"))
	if len(rows) != len(d.Users)+1 {
		t.Fatalf("users.csv rows: %d, want %d+header", len(rows), len(d.Users))
	}
	if rows[0][0] != "uid" {
		t.Fatalf("header: %v", rows[0])
	}
}
