// Command recdb-datagen writes the synthetic evaluation datasets to CSV
// files (users.csv, items.csv, ratings.csv, and cities.csv for geo
// datasets), so external tools can inspect or reuse them.
//
//	recdb-datagen -dataset yelp -scale 0.5 -out ./data
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"recdb/internal/dataset"
)

func main() {
	name := flag.String("dataset", "movielens", "dataset: movielens, ldos, or yelp")
	scale := flag.Float64("scale", 1.0, "scale factor")
	out := flag.String("out", ".", "output directory")
	flag.Parse()

	var spec dataset.Spec
	switch strings.ToLower(*name) {
	case "movielens":
		spec = dataset.MovieLens
	case "ldos", "ldos-comoda":
		spec = dataset.LDOS
	case "yelp":
		spec = dataset.Yelp
	default:
		fatal(fmt.Errorf("unknown dataset %q", *name))
	}
	if *scale != 1.0 {
		spec = spec.Scaled(*scale)
	}
	d := dataset.Generate(spec)
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	writeCSV(*out, "users.csv", [][]string{{"uid", "name", "city", "age", "gender"}}, func(emit func([]string)) {
		for _, u := range d.Users {
			emit([]string{
				strconv.FormatInt(u.ID, 10), u.Name, u.City,
				strconv.FormatInt(u.Age, 10), u.Gender,
			})
		}
	})
	itemHeader := []string{"iid", "name", "director", "genre"}
	if spec.Geo {
		itemHeader = append(itemHeader, "x", "y", "city")
	}
	writeCSV(*out, "items.csv", [][]string{itemHeader}, func(emit func([]string)) {
		for _, it := range d.Items {
			row := []string{strconv.FormatInt(it.ID, 10), it.Name, it.Director, it.Genre}
			if spec.Geo {
				row = append(row,
					strconv.FormatFloat(it.Loc.X, 'g', -1, 64),
					strconv.FormatFloat(it.Loc.Y, 'g', -1, 64),
					it.City,
				)
			}
			emit(row)
		}
	})
	writeCSV(*out, "ratings.csv", [][]string{{"uid", "iid", "ratingval"}}, func(emit func([]string)) {
		for _, r := range d.Ratings {
			emit([]string{
				strconv.FormatInt(r.User, 10),
				strconv.FormatInt(r.Item, 10),
				strconv.FormatFloat(r.Value, 'g', -1, 64),
			})
		}
	})
	if spec.Geo {
		writeCSV(*out, "cities.csv", [][]string{{"name", "wkt"}}, func(emit func([]string)) {
			for _, c := range d.Cities {
				emit([]string{c.Name, c.Area.WKT()})
			}
		})
	}
	fmt.Printf("wrote %s to %s\n", d.Describe(), *out)
}

func writeCSV(dir, name string, header [][]string, fill func(emit func([]string))) {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	for _, h := range header {
		if err := w.Write(h); err != nil {
			fatal(err)
		}
	}
	fill(func(row []string) {
		if err := w.Write(row); err != nil {
			fatal(err)
		}
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "recdb-datagen:", err)
	os.Exit(1)
}
