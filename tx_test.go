package recdb

import (
	"context"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// count is a test helper: the number of rows a query returns in its
// single int column.
func count(t *testing.T, q interface {
	Query(string) (*Rows, error)
}, query string) int64 {
	t.Helper()
	rows, err := q.Query(query)
	if err != nil {
		t.Fatalf("%s: %v", query, err)
	}
	if !rows.Next() {
		t.Fatalf("%s: no rows", query)
	}
	var n int64
	if err := rows.Scan(&n); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestTxCommit(t *testing.T) {
	db := newDB(t)
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO ratings VALUES (9, 1, 5.0)"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO ratings VALUES (9, 2, 4.0)"); err != nil {
		t.Fatal(err)
	}
	// The transaction reads its own writes.
	if n := count(t, tx, "SELECT COUNT(*) FROM ratings WHERE uid = 9"); n != 2 {
		t.Fatalf("uncommitted rows visible to tx = %d, want 2", n)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if n := count(t, db, "SELECT COUNT(*) FROM ratings WHERE uid = 9"); n != 2 {
		t.Fatalf("committed rows = %d, want 2", n)
	}
	// Finished transactions reject further use; Rollback is a no-op.
	if _, err := tx.Exec("INSERT INTO ratings VALUES (9, 3, 3.0)"); err != ErrTxDone {
		t.Fatalf("Exec after Commit: %v", err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatalf("Rollback after Commit: %v", err)
	}
}

func TestTxRollback(t *testing.T) {
	db := newDB(t)
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO ratings VALUES (8, 1, 5.0)"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("UPDATE ratings SET ratingval = 0 WHERE uid = 2"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("DELETE FROM ratings WHERE uid = 3"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if n := count(t, db, "SELECT COUNT(*) FROM ratings WHERE uid = 8"); n != 0 {
		t.Fatalf("rolled-back insert survived: %d rows", n)
	}
	if n := count(t, db, "SELECT COUNT(*) FROM ratings WHERE uid = 2 AND ratingval = 0"); n != 0 {
		t.Fatalf("rolled-back update survived: %d rows", n)
	}
	if n := count(t, db, "SELECT COUNT(*) FROM ratings WHERE uid = 3"); n != 2 {
		t.Fatalf("rolled-back delete survived: %d of 2 rows left", n)
	}
}

func TestTxRejectsDDLAndNestedBegin(t *testing.T) {
	db := newDB(t)
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	if _, err := tx.Exec("CREATE TABLE x (a INT)"); err == nil {
		t.Fatal("DDL inside a transaction should fail")
	}
	if _, err := tx.Exec("BEGIN"); err == nil {
		t.Fatal("nested BEGIN should fail")
	}
	if _, err := tx.Exec("COMMIT"); err == nil {
		t.Fatal("SQL COMMIT through Tx.Exec should fail")
	}
	// The rejected statements must not have poisoned the transaction.
	if _, err := tx.Exec("INSERT INTO ratings VALUES (7, 7, 1.0)"); err != nil {
		t.Fatal(err)
	}
}

func TestTxStatementFailureUndone(t *testing.T) {
	db := newDB(t)
	db.MustExec("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
	db.MustExec("INSERT INTO kv VALUES (1, 10)")
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO kv VALUES (2, 20)"); err != nil {
		t.Fatal(err)
	}
	// A multi-row statement that fails mid-way is backed out entirely,
	// and the transaction stays usable.
	if _, err := tx.Exec("INSERT INTO kv VALUES (3, 30), (1, 99)"); err == nil {
		t.Fatal("duplicate pk should fail")
	}
	if n := count(t, tx, "SELECT COUNT(*) FROM kv"); n != 2 {
		t.Fatalf("rows after failed statement = %d, want 2", n)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if n := count(t, db, "SELECT COUNT(*) FROM kv"); n != 2 {
		t.Fatalf("rows after commit = %d, want 2", n)
	}
}

func TestExecRejectsTxnControl(t *testing.T) {
	db := newDB(t)
	for _, stmt := range []string{"BEGIN", "COMMIT", "ROLLBACK"} {
		if _, err := db.Exec(stmt); err == nil || !strings.Contains(err.Error(), "Session") {
			t.Fatalf("Exec(%q) = %v, want session-pointing error", stmt, err)
		}
	}
}

func TestSessionTxnControl(t *testing.T) {
	db := newDB(t)
	sess := db.NewSession()
	defer sess.Close()

	if _, err := sess.Exec("COMMIT"); err == nil {
		t.Fatal("COMMIT without BEGIN should fail")
	}
	if _, err := sess.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if !sess.InTransaction() {
		t.Fatal("session should be in a transaction after BEGIN")
	}
	if _, err := sess.Exec("BEGIN"); err == nil {
		t.Fatal("nested BEGIN should fail")
	}
	if _, err := sess.Exec("INSERT INTO ratings VALUES (9, 1, 5.0)"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("ROLLBACK"); err != nil {
		t.Fatal(err)
	}
	if n := count(t, db, "SELECT COUNT(*) FROM ratings WHERE uid = 9"); n != 0 {
		t.Fatalf("rolled-back insert survived: %d rows", n)
	}

	// One Exec call can carry a whole transaction.
	if _, err := sess.Exec(`
		BEGIN;
		INSERT INTO ratings VALUES (9, 1, 5.0);
		INSERT INTO ratings VALUES (9, 2, 4.0);
		COMMIT;
	`); err != nil {
		t.Fatal(err)
	}
	if n := count(t, db, "SELECT COUNT(*) FROM ratings WHERE uid = 9"); n != 2 {
		t.Fatalf("committed rows = %d, want 2", n)
	}
}

func TestSessionCloseRollsBack(t *testing.T) {
	db := newDB(t)
	sess := db.NewSession()
	if _, err := sess.Exec("BEGIN; INSERT INTO ratings VALUES (9, 1, 5.0);"); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if n := count(t, db, "SELECT COUNT(*) FROM ratings WHERE uid = 9"); n != 0 {
		t.Fatalf("abandoned transaction survived session close: %d rows", n)
	}
	if _, err := sess.Exec("SELECT uid FROM ratings"); err != ErrSessionClosed {
		t.Fatalf("Exec on closed session: %v", err)
	}
}

func TestExecScriptTransaction(t *testing.T) {
	db := newDB(t)
	if _, err := db.ExecScript(`
		BEGIN;
		INSERT INTO ratings VALUES (9, 1, 5.0);
		ROLLBACK;
		BEGIN;
		INSERT INTO ratings VALUES (9, 2, 4.0);
		COMMIT;
	`); err != nil {
		t.Fatal(err)
	}
	if n := count(t, db, "SELECT COUNT(*) FROM ratings WHERE uid = 9"); n != 1 {
		t.Fatalf("rows after script = %d, want 1", n)
	}

	// A script that ends mid-transaction is rolled back and reports it.
	_, err := db.ExecScript(`
		BEGIN;
		INSERT INTO ratings VALUES (9, 3, 3.0);
	`)
	if err == nil || !strings.Contains(err.Error(), "open transaction") {
		t.Fatalf("dangling script transaction: %v", err)
	}
	if n := count(t, db, "SELECT COUNT(*) FROM ratings WHERE uid = 9"); n != 1 {
		t.Fatalf("dangling transaction leaked rows: %d, want 1", n)
	}
}

func TestTxDurableAtomicity(t *testing.T) {
	dir := t.TempDir()
	db := Open()
	db.MustExec("CREATE TABLE a (k INT PRIMARY KEY)")
	db.MustExec("CREATE TABLE b (k INT PRIMARY KEY)")
	if err := db.SaveTo(dir); err != nil {
		t.Fatal(err)
	}
	// A committed transaction spanning two tables survives reopen whole.
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO a VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO b VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// A rolled-back transaction leaves no durable trace.
	tx, err = db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO a VALUES (2)"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	re, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if n := count(t, re, "SELECT COUNT(*) FROM a"); n != 1 {
		t.Fatalf("table a after reopen = %d rows, want 1", n)
	}
	if n := count(t, re, "SELECT COUNT(*) FROM b"); n != 1 {
		t.Fatalf("table b after reopen = %d rows, want 1", n)
	}
}

func TestTxReleasesSnapshotPins(t *testing.T) {
	db := newDB(t)
	heap := func() interface{ OpenSnapshots() int } {
		tab, err := db.Engine().Catalog().Get("ratings")
		if err != nil {
			t.Fatal(err)
		}
		return tab.Heap
	}
	for _, finish := range []func(*Tx) error{(*Tx).Commit, (*Tx).Rollback} {
		tx, err := db.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Exec("INSERT INTO ratings VALUES (9, 9, 1.0)"); err != nil {
			t.Fatal(err)
		}
		if got := heap().OpenSnapshots(); got != 1 {
			t.Fatalf("open snapshots during tx = %d, want 1", got)
		}
		if err := finish(tx); err != nil {
			t.Fatal(err)
		}
		if got := heap().OpenSnapshots(); got != 0 {
			t.Fatalf("open snapshots after finish = %d, want 0", got)
		}
	}
}

func TestTxSerializesWithSecondTx(t *testing.T) {
	db := newDB(t)
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	// A second transaction cannot start while one is open.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := db.BeginContext(ctx); err == nil {
		t.Fatal("second concurrent transaction should block until deadline")
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	tx2, err := db.Begin()
	if err != nil {
		t.Fatalf("Begin after finish: %v", err)
	}
	if err := tx2.Rollback(); err != nil {
		t.Fatal(err)
	}
}

func TestTxBlocksSameTableWriterNotOthers(t *testing.T) {
	db := newDB(t)
	db.MustExec("CREATE TABLE other (k INT PRIMARY KEY)")
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO ratings VALUES (9, 1, 5.0)"); err != nil {
		t.Fatal(err)
	}
	// A writer to an untouched table proceeds while the tx is open.
	if _, err := db.Exec("INSERT INTO other VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	// A writer to the locked table blocks until its deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := db.ExecContext(ctx, "INSERT INTO ratings VALUES (9, 2, 4.0)"); err == nil {
		t.Fatal("same-table autocommit write should block behind the tx")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// After commit the blocked table is writable again.
	if _, err := db.Exec("INSERT INTO ratings VALUES (9, 2, 4.0)"); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentAutocommitDisjointTables exercises the per-table gates
// under the race detector: writers to different tables run concurrently
// with readers and with an explicit transaction cycling on a third table.
func TestConcurrentAutocommitDisjointTables(t *testing.T) {
	db := Open()
	defer db.Close()
	db.MustExec("CREATE TABLE t1 (k INT PRIMARY KEY, v INT)")
	db.MustExec("CREATE TABLE t2 (k INT PRIMARY KEY, v INT)")
	db.MustExec("CREATE TABLE t3 (k INT PRIMARY KEY, v INT)")
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			table := "t1"
			if w == 1 {
				table = "t2"
			}
			for i := 0; i < perWorker; i++ {
				db.MustExec("INSERT INTO " + table + " VALUES (" + strconv.Itoa(i) + ", 0)")
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < perWorker; i++ {
			tx, err := db.Begin()
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := tx.Exec("INSERT INTO t3 VALUES (" + strconv.Itoa(i) + ", 0)"); err != nil {
				t.Error(err)
				tx.Rollback()
				return
			}
			var ferr error
			if i%2 == 0 {
				ferr = tx.Commit()
			} else {
				ferr = tx.Rollback()
			}
			if ferr != nil {
				t.Error(ferr)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < perWorker; i++ {
			if _, err := db.Query("SELECT COUNT(*) FROM t1"); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if n := count(t, db, "SELECT COUNT(*) FROM t1"); n != perWorker {
		t.Fatalf("t1 rows = %d, want %d", n, perWorker)
	}
	if n := count(t, db, "SELECT COUNT(*) FROM t2"); n != perWorker {
		t.Fatalf("t2 rows = %d, want %d", n, perWorker)
	}
	if n := count(t, db, "SELECT COUNT(*) FROM t3"); n != perWorker/2 {
		t.Fatalf("t3 rows = %d, want %d committed", n, perWorker/2)
	}
}

