package recdb

import (
	"fmt"
	"strings"
	"time"
)

// MetricValue is one named counter or gauge in a metrics snapshot.
type MetricValue struct {
	Name  string
	Value int64
}

// MetricHistogram summarizes one recorded distribution. Latency
// histograms (names ending in "_ns") are in nanoseconds; size histograms
// (e.g. wal.batch_size) are plain magnitudes. P50/P99 are upper bounds
// exact to the histogram's factor-of-two bucket resolution.
type MetricHistogram struct {
	Name  string
	Count int64
	Sum   int64
	Mean  float64
	P50   int64
	P99   int64
}

// MetricsSnapshot is a point-in-time copy of the engine's observability
// instruments: buffer-pool, WAL, recommender-build, cache, planner, and
// executor counters. Each slice is sorted by name.
type MetricsSnapshot struct {
	Counters   []MetricValue
	Gauges     []MetricValue
	Histograms []MetricHistogram
}

// Metrics snapshots the engine's instrument registry. It is cheap (atomic
// loads under a short registry lock) and safe to call concurrently with
// queries and writes.
func (db *DB) Metrics() MetricsSnapshot {
	s := db.eng.Metrics().Snapshot()
	var out MetricsSnapshot
	for _, v := range s.Counters {
		out.Counters = append(out.Counters, MetricValue{Name: v.Name, Value: v.Value})
	}
	for _, v := range s.Gauges {
		out.Gauges = append(out.Gauges, MetricValue{Name: v.Name, Value: v.Value})
	}
	for _, h := range s.Histograms {
		out.Histograms = append(out.Histograms, MetricHistogram{
			Name: h.Name, Count: h.Count, Sum: h.Sum,
			Mean: h.Mean(), P50: h.Quantile(0.50), P99: h.Quantile(0.99),
		})
	}
	return out
}

// Get returns the counter or gauge value under name, and whether it
// exists in the snapshot.
func (s MetricsSnapshot) Get(name string) (int64, bool) {
	for _, v := range s.Counters {
		if v.Name == name {
			return v.Value, true
		}
	}
	for _, v := range s.Gauges {
		if v.Name == name {
			return v.Value, true
		}
	}
	return 0, false
}

// String renders the snapshot as aligned text, one instrument per line
// (the format behind recdb-cli's \metrics command).
func (s MetricsSnapshot) String() string {
	var b strings.Builder
	width := 0
	for _, v := range s.Counters {
		if len(v.Name) > width {
			width = len(v.Name)
		}
	}
	for _, v := range s.Gauges {
		if len(v.Name) > width {
			width = len(v.Name)
		}
	}
	for _, h := range s.Histograms {
		if len(h.Name) > width {
			width = len(h.Name)
		}
	}
	for _, v := range s.Counters {
		fmt.Fprintf(&b, "%-*s  %d\n", width, v.Name, v.Value)
	}
	for _, v := range s.Gauges {
		fmt.Fprintf(&b, "%-*s  %d\n", width, v.Name, v.Value)
	}
	for _, h := range s.Histograms {
		// Only *_ns histograms are durations; others render as counts.
		if strings.HasSuffix(h.Name, "_ns") {
			fmt.Fprintf(&b, "%-*s  count=%d mean=%s p50<=%s p99<=%s\n",
				width, h.Name, h.Count,
				time.Duration(h.Mean).String(), time.Duration(h.P50).String(), time.Duration(h.P99).String())
		} else {
			fmt.Fprintf(&b, "%-*s  count=%d mean=%.1f p50<=%d p99<=%d\n",
				width, h.Name, h.Count, h.Mean, h.P50, h.P99)
		}
	}
	return b.String()
}
