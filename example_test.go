package recdb_test

import (
	"fmt"

	"recdb"
)

// The paper's Figure 1 data and Query 1: create a recommender inside the
// database and ask for top recommendations.
func Example() {
	db := recdb.Open()
	defer db.Close()

	db.MustExec(`CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT)`)
	db.MustExec(`INSERT INTO ratings VALUES
		(1, 1, 1.5),
		(2, 2, 3.5), (2, 1, 4.5), (2, 3, 2),
		(3, 2, 1), (3, 1, 2),
		(4, 2, 1)`)
	db.MustExec(`CREATE RECOMMENDER GeneralRec ON ratings
		USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval
		USING ItemCosCF`)

	rows, err := db.Query(`SELECT R.iid, R.ratingval FROM ratings AS R
		RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
		WHERE R.uid = 1
		ORDER BY R.ratingval DESC, R.iid ASC LIMIT 10`)
	if err != nil {
		panic(err)
	}
	for rows.Next() {
		var item int64
		var score float64
		if err := rows.Scan(&item, &score); err != nil {
			panic(err)
		}
		fmt.Printf("item %d: %.2f\n", item, score)
	}
	// Output:
	// item 2: 1.50
	// item 3: 1.50
}

// Aggregates express the paper's non-personalized recommender class as
// plain SQL.
func ExampleDB_Query_aggregates() {
	db := recdb.Open()
	defer db.Close()
	db.MustExec(`CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT)`)
	db.MustExec(`INSERT INTO ratings VALUES
		(1, 10, 5), (2, 10, 4), (3, 10, 5),
		(1, 20, 2), (2, 20, 1)`)
	rows, err := db.Query(`SELECT iid, AVG(ratingval) AS score FROM ratings
		GROUP BY iid ORDER BY score DESC`)
	if err != nil {
		panic(err)
	}
	for rows.Next() {
		var item int64
		var score float64
		rows.Scan(&item, &score)
		fmt.Printf("%d %.2f\n", item, score)
	}
	// Output:
	// 10 4.67
	// 20 1.50
}
