package client_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"recdb"
	"recdb/client"
	"recdb/internal/server"
)

func startServer(t *testing.T, opts server.Options) (*server.Server, string) {
	t.Helper()
	db := recdb.Open()
	if _, err := db.Exec(`CREATE TABLE kv (uid INT, v INT)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", i, i*i)); err != nil {
			t.Fatal(err)
		}
	}
	srv := server.New(db, opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		db.Close()
	})
	return srv, ln.Addr().String()
}

// One connection, many concurrent callers: every caller must get its
// own answer back even though requests interleave on the wire.
func TestPipelineConcurrentCallersShareOneConn(t *testing.T) {
	_, addr := startServer(t, server.Options{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	const callers = 48 // 3x the pipeline depth: excess callers queue on slots
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			uid := i % 64
			rows, err := c.Query(context.Background(),
				fmt.Sprintf("SELECT v FROM kv WHERE uid = %d", uid))
			if err != nil {
				errs[i] = err
				return
			}
			if rows.Len() != 1 {
				errs[i] = fmt.Errorf("uid %d: %d rows", uid, rows.Len())
				return
			}
			var v int64
			rows.Next()
			if err := rows.Scan(&v); err != nil {
				errs[i] = err
				return
			}
			if v != int64(uid*uid) {
				// The demux delivered someone else's answer — the exact bug
				// pipelining must not introduce.
				errs[i] = fmt.Errorf("uid %d got v=%d, want %d", uid, v, uid*uid)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
}

// Exceeding the server's pipeline depth from one Conn must never draw a
// "busy" answer: the client's slot bound matches the server's.
func TestPipelineNeverTripsServerBusy(t *testing.T) {
	_, addr := startServer(t, server.Options{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	var busy atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Query(context.Background(), "SELECT v FROM kv WHERE uid = 3")
			var se *client.ServerError
			if errors.As(err, &se) && se.Code == "busy" {
				busy.Add(1)
			} else if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if n := busy.Load(); n != 0 {
		t.Fatalf("%d of 200 pipelined requests answered busy", n)
	}
}

// Mixed kinds pipeline together: pings, reads, and writes on one Conn.
func TestPipelineMixedKinds(t *testing.T) {
	_, addr := startServer(t, server.Options{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	var wg sync.WaitGroup
	for i := 0; i < 30; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 3 {
			case 0:
				if err := c.Ping(context.Background()); err != nil {
					t.Error(err)
				}
			case 1:
				if _, err := c.Query(context.Background(), "SELECT v FROM kv WHERE uid = 1"); err != nil {
					t.Error(err)
				}
			case 2:
				res, err := c.Exec(context.Background(),
					fmt.Sprintf("INSERT INTO kv VALUES (%d, 0)", 100+i))
				if err != nil {
					t.Error(err)
				} else if res.RowsAffected != 1 {
					t.Errorf("insert affected %d", res.RowsAffected)
				}
			}
		}(i)
	}
	wg.Wait()
}

// Close with calls in flight: everyone unblocks with ErrClosed, nobody
// hangs on a dead demux.
func TestPipelineCloseFailsInFlight(t *testing.T) {
	_, addr := startServer(t, server.Options{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	results := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Query(context.Background(), "SELECT v FROM kv")
			results <- err
		}()
	}
	time.Sleep(5 * time.Millisecond)
	_ = c.Close()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("calls hung after Close")
	}
	if !c.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	// Late calls fail immediately, not hang.
	if _, err := c.Query(context.Background(), "SELECT 1"); err == nil {
		t.Fatal("query on closed conn succeeded")
	}
}

// A server that disappears poisons the Conn: in-flight calls fail with
// the transport error and the Conn reports Closed.
func TestPipelinePoisonOnServerDeath(t *testing.T) {
	srv, addr := startServer(t, server.Options{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx) // closes the session from the server side

	deadline := time.Now().Add(5 * time.Second)
	for !c.Closed() {
		if time.Now().After(deadline) {
			t.Fatal("conn never noticed the server dying")
		}
		_ = c.Ping(context.Background())
		time.Sleep(5 * time.Millisecond)
	}
	if err := c.Ping(context.Background()); err == nil {
		t.Fatal("ping succeeded on a poisoned conn")
	}
}

// A context cancelled before the call starts never touches the wire.
func TestPipelinePreCancelledContext(t *testing.T) {
	_, addr := startServer(t, server.Options{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Query(ctx, "SELECT v FROM kv"); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// The conn is still healthy for the next caller.
	if err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
}
