// Package client is the Go client for recdb-server: it dials the wire
// protocol (internal/wire), runs statements, and decodes results into
// the same row representation the embedded API uses, so code written
// against recdb.Rows ports to the network client by swapping the
// constructor.
//
// A Conn is one session and is safe for concurrent use; requests are
// single-flight (one in flight at a time, serialized internally). A
// context with a deadline propagates to the server as the request's
// timeout; cancelling the context sends a Cancel frame so the server
// stops executing, and the call returns once the server acknowledges
// with its terminal answer.
package client

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"recdb/internal/types"
	"recdb/internal/wire"
)

// Row is one result tuple, identical to the embedded API's recdb.Row.
type Row = types.Row

// ServerError is a typed failure the server answered with.
type ServerError struct {
	// Code is one of the wire.Code* constants ("busy", "timeout",
	// "canceled", "query", ...).
	Code string
	// Message is the server's human-readable detail.
	Message string
}

// Error implements error.
func (e *ServerError) Error() string {
	return fmt.Sprintf("recdb server: %s: %s", e.Code, e.Message)
}

// ErrClosed is returned by calls on a closed (or poisoned) connection.
var ErrClosed = errors.New("client: connection closed")

// Result reports a statement's effect, mirroring recdb.Result.
type Result struct {
	RowsAffected int64
}

// Conn is one client session. Methods serialize internally: a second
// request waits for the first to finish rather than interleaving.
type Conn struct {
	sessionID uint64
	server    string

	mu     sync.Mutex
	conn   net.Conn
	buf    []byte
	nextID uint32
	closed bool
}

// Dial connects to a recdb-server at addr and performs the handshake.
func Dial(addr string) (*Conn, error) {
	return DialContext(context.Background(), addr)
}

// DialContext is Dial bounded by ctx (connection establishment and
// handshake only).
func DialContext(ctx context.Context, addr string) (*Conn, error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	if dl, ok := ctx.Deadline(); ok {
		_ = nc.SetDeadline(dl)
	}
	if _, err := nc.Write([]byte(wire.Magic)); err != nil {
		_ = nc.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	t, payload, buf, err := wire.ReadFrame(nc, make([]byte, 512))
	if err != nil {
		_ = nc.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	switch t {
	case wire.TypeHello:
		h, err := wire.DecodeHello(payload)
		if err != nil {
			_ = nc.Close()
			return nil, fmt.Errorf("client: handshake: %w", err)
		}
		_ = nc.SetDeadline(time.Time{})
		return &Conn{sessionID: h.SessionID, server: h.Server, conn: nc, buf: buf}, nil
	case wire.TypeError:
		e, derr := wire.DecodeError(payload)
		_ = nc.Close()
		if derr != nil {
			return nil, fmt.Errorf("client: handshake: %w", derr)
		}
		return nil, &ServerError{Code: e.Code, Message: e.Message}
	default:
		_ = nc.Close()
		return nil, fmt.Errorf("client: handshake: unexpected frame type %q", byte(t))
	}
}

// SessionID is the server-assigned session id from the handshake.
func (c *Conn) SessionID() uint64 { return c.sessionID }

// Server is the server string from the handshake.
func (c *Conn) Server() string { return c.server }

// Close closes the connection. Safe to call repeatedly.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}

// Ping checks server liveness end to end.
func (c *Conn) Ping(ctx context.Context) error {
	_, _, err := c.roundTrip(ctx, wire.TypePing, "")
	return err
}

// Exec runs a statement or semicolon-separated script on the server and
// reports the rows affected.
func (c *Conn) Exec(ctx context.Context, sql string) (Result, error) {
	complete, _, err := c.roundTrip(ctx, wire.TypeExec, sql)
	if err != nil {
		return Result{}, err
	}
	return Result{RowsAffected: complete.Rows}, nil
}

// Query runs a SELECT (or EXPLAIN) and returns its materialized result.
func (c *Conn) Query(ctx context.Context, sql string) (*Rows, error) {
	_, rows, err := c.roundTrip(ctx, wire.TypeQuery, sql)
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// roundTrip performs one single-flight request cycle: send the frame,
// then read response frames until the request's terminal answer. When
// ctx carries a deadline it is forwarded as the server-side timeout;
// when ctx is cancelled a Cancel frame asks the server to interrupt,
// and the cycle still ends on the server's terminal answer (an
// unresponsive server is cut off by a short read-deadline backstop).
func (c *Conn) roundTrip(ctx context.Context, kind wire.Type, sql string) (wire.Complete, *Rows, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return wire.Complete{}, nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return wire.Complete{}, nil, err
	}
	id := c.nextID
	c.nextID++

	var payload []byte
	if kind == wire.TypePing {
		payload = wire.AppendID(nil, id)
	} else {
		var timeoutMillis uint32
		if dl, ok := ctx.Deadline(); ok {
			if ms := time.Until(dl).Milliseconds(); ms > 0 {
				timeoutMillis = uint32(min(ms, int64(^uint32(0))))
			} else {
				timeoutMillis = 1
			}
		}
		payload = wire.AppendRequest(nil, wire.Request{ID: id, TimeoutMillis: timeoutMillis, SQL: sql})
	}
	if err := wire.WriteFrame(c.conn, kind, payload); err != nil {
		return wire.Complete{}, nil, c.poisonLocked(fmt.Errorf("client: send: %w", err))
	}

	if ctx.Done() != nil {
		stop := make(chan struct{})
		watcherDone := make(chan struct{})
		go func() {
			defer close(watcherDone)
			select {
			case <-ctx.Done():
				// Ask the server to interrupt; the terminal answer (code
				// "canceled" or a result that beat the cancel) still
				// arrives on the normal path. The read deadline is a
				// backstop against a hung server only.
				_ = wire.WriteFrame(c.conn, wire.TypeCancel, wire.AppendID(nil, id))
				_ = c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			case <-stop:
			}
		}()
		// Join the watcher before returning so a late deadline write
		// cannot leak into the next request's read loop.
		defer func() {
			close(stop)
			<-watcherDone
			c.clearReadDeadlineLocked()
		}()
	}

	rows := &Rows{pos: -1}
	for {
		t, p, buf, err := wire.ReadFrame(c.conn, c.buf)
		c.buf = buf
		if err != nil {
			return wire.Complete{}, nil, c.poisonLocked(fmt.Errorf("client: receive: %w", err))
		}
		switch t {
		case wire.TypePong:
			got, err := wire.DecodeID(p)
			if err != nil {
				return wire.Complete{}, nil, c.poisonLocked(err)
			}
			if got == id {
				return wire.Complete{}, nil, nil
			}
		case wire.TypeRowDesc:
			d, err := wire.DecodeRowDesc(p)
			if err != nil {
				return wire.Complete{}, nil, c.poisonLocked(err)
			}
			if d.ID == id {
				rows.cols, rows.strategy = d.Columns, d.Strategy
			}
		case wire.TypeDataRow:
			got, row, err := wire.DecodeDataRow(p)
			if err != nil {
				return wire.Complete{}, nil, c.poisonLocked(err)
			}
			if got == id {
				rows.rows = append(rows.rows, row)
			}
		case wire.TypeRowBatch:
			got, batch, err := wire.DecodeRowBatch(p)
			if err != nil {
				return wire.Complete{}, nil, c.poisonLocked(err)
			}
			if got == id {
				rows.rows = append(rows.rows, batch...)
			}
		case wire.TypeComplete:
			done, err := wire.DecodeComplete(p)
			if err != nil {
				return wire.Complete{}, nil, c.poisonLocked(err)
			}
			if done.ID == id {
				return done, rows, nil
			}
		case wire.TypeError:
			e, err := wire.DecodeError(p)
			if err != nil {
				return wire.Complete{}, nil, c.poisonLocked(err)
			}
			if e.ID == id || e.Code == wire.CodeProtocol || e.Code == wire.CodeInternal {
				return wire.Complete{}, nil, &ServerError{Code: e.Code, Message: e.Message}
			}
		default:
			return wire.Complete{}, nil, c.poisonLocked(fmt.Errorf("client: unexpected frame type %q", byte(t)))
		}
	}
}

// poisonLocked marks the connection unusable after a transport-level
// failure — framing state is unknown, so no further request can trust
// the stream.
func (c *Conn) poisonLocked(err error) error {
	if !c.closed {
		c.closed = true
		_ = c.conn.Close()
	}
	return err
}

func (c *Conn) clearReadDeadlineLocked() {
	_ = c.conn.SetReadDeadline(time.Time{})
}

// Rows is a materialized query result, mirroring recdb.Rows: iterate
// with Next, read with Row or Scan.
type Rows struct {
	cols     []string
	strategy string
	rows     []Row
	pos      int
}

// Columns returns the result column names.
func (r *Rows) Columns() []string { return r.cols }

// Strategy reports the recommendation strategy the server's planner
// chose ("" for plain queries).
func (r *Rows) Strategy() string { return r.strategy }

// Len returns the number of rows.
func (r *Rows) Len() int { return len(r.rows) }

// Next advances to the next row.
func (r *Rows) Next() bool {
	if r.pos+1 >= len(r.rows) {
		return false
	}
	r.pos++
	return true
}

// Row returns the current row.
func (r *Rows) Row() Row {
	if r.pos < 0 || r.pos >= len(r.rows) {
		return nil
	}
	return r.rows[r.pos]
}

// All returns every row.
func (r *Rows) All() []Row { return r.rows }

// Scan copies the current row into dest pointers (*int64, *float64,
// *string, *bool, or *types.Value), exactly as recdb.Rows.Scan does.
func (r *Rows) Scan(dest ...any) error {
	if r.pos < 0 || r.pos >= len(r.rows) {
		return fmt.Errorf("client: Scan called without a current row")
	}
	return types.ScanRow(r.rows[r.pos], r.cols, dest...)
}
