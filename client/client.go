// Package client is the Go client for recdb-server: it dials the wire
// protocol (internal/wire), runs statements, and decodes results into
// the same row representation the embedded API uses, so code written
// against recdb.Rows ports to the network client by swapping the
// constructor.
//
// A Conn is one session and is safe for concurrent use. Requests are
// pipelined: up to 16 may be in flight on the wire at once (the server's
// own pipeline bound), so concurrent callers share one connection's
// round trips instead of queueing behind each other. Every request
// carries a client-assigned id and a dedicated reader goroutine demuxes
// response frames back to their callers, so answers may interleave
// freely. A context with a deadline propagates to the server as the
// request's timeout; cancelling the context sends a Cancel frame so the
// server stops executing, and the call returns once the server
// acknowledges with its terminal answer.
package client

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"recdb/internal/types"
	"recdb/internal/wire"
)

// pipelineDepth bounds how many requests a Conn keeps in flight. The
// server permits 16 but retires a request from its pipeline accounting
// only after writing its response, so a client that refills the instant
// an answer arrives can transiently look 17 deep to the server and draw
// a spurious "busy". Its worker is single-threaded — at most one
// answered request can be in that window — so one slot of headroom
// makes the overrun impossible.
const pipelineDepth = 15

// cancelGrace bounds how long a cancelled call waits for the server's
// terminal answer before giving up on the connection. A cancelled
// request that is still queued behind others on the server is not
// interrupted until it starts executing, so this is a backstop against
// a hung server, not the normal cancel path.
const cancelGrace = 5 * time.Second

// Row is one result tuple, identical to the embedded API's recdb.Row.
type Row = types.Row

// ServerError is a typed failure the server answered with.
type ServerError struct {
	// Code is one of the wire.Code* constants ("busy", "timeout",
	// "canceled", "query", "shard_down", ...).
	Code string
	// Message is the server's human-readable detail.
	Message string
}

// Error implements error.
func (e *ServerError) Error() string {
	return fmt.Sprintf("recdb server: %s: %s", e.Code, e.Message)
}

// ErrClosed is returned by calls on a closed (or poisoned) connection.
var ErrClosed = errors.New("client: connection closed")

// Result reports a statement's effect, mirroring recdb.Result.
type Result struct {
	RowsAffected int64
}

// call is one in-flight request: the reader goroutine fills it in and
// closes done when the terminal answer arrives (or the connection dies).
type call struct {
	rows     *Rows
	complete wire.Complete
	err      error
	done     chan struct{}
}

// Conn is one client session. It is safe for concurrent use: callers
// share the connection's pipeline, each blocking only on its own answer.
type Conn struct {
	sessionID uint64
	server    string
	conn      net.Conn

	// slots holds pipelineDepth tokens; acquiring one admits a request
	// into the pipeline.
	slots chan struct{}

	// wmu serializes frame writes onto the connection.
	wmu sync.Mutex

	// mu guards the demux state below.
	mu      sync.Mutex
	pending map[uint32]*call
	nextID  uint32
	closed  bool
	cause   error // the transport failure that poisoned the conn

	// dead closes when the connection is poisoned or closed, unblocking
	// callers waiting for a pipeline slot.
	dead chan struct{}
}

// Dial connects to a recdb-server at addr and performs the handshake.
func Dial(addr string) (*Conn, error) {
	return DialContext(context.Background(), addr)
}

// DialContext is Dial bounded by ctx (connection establishment and
// handshake only).
func DialContext(ctx context.Context, addr string) (*Conn, error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	if dl, ok := ctx.Deadline(); ok {
		_ = nc.SetDeadline(dl)
	}
	if _, err := nc.Write([]byte(wire.Magic)); err != nil {
		_ = nc.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	t, payload, _, err := wire.ReadFrame(nc, make([]byte, 512))
	if err != nil {
		_ = nc.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	switch t {
	case wire.TypeHello:
		h, err := wire.DecodeHello(payload)
		if err != nil {
			_ = nc.Close()
			return nil, fmt.Errorf("client: handshake: %w", err)
		}
		_ = nc.SetDeadline(time.Time{})
		c := &Conn{
			sessionID: h.SessionID,
			server:    h.Server,
			conn:      nc,
			slots:     make(chan struct{}, pipelineDepth),
			pending:   make(map[uint32]*call),
			dead:      make(chan struct{}),
		}
		for i := 0; i < pipelineDepth; i++ {
			c.slots <- struct{}{}
		}
		go c.readLoop()
		return c, nil
	case wire.TypeError:
		e, derr := wire.DecodeError(payload)
		_ = nc.Close()
		if derr != nil {
			return nil, fmt.Errorf("client: handshake: %w", derr)
		}
		return nil, &ServerError{Code: e.Code, Message: e.Message}
	default:
		_ = nc.Close()
		return nil, fmt.Errorf("client: handshake: unexpected frame type %q", byte(t))
	}
}

// SessionID is the server-assigned session id from the handshake.
func (c *Conn) SessionID() uint64 { return c.sessionID }

// Server is the server string from the handshake.
func (c *Conn) Server() string { return c.server }

// Close closes the connection; in-flight calls fail with ErrClosed.
// Safe to call repeatedly.
func (c *Conn) Close() error {
	c.fail(ErrClosed)
	return nil
}

// Closed reports whether the connection is closed or has been poisoned
// by a transport failure; a closed Conn never recovers (dial a new one).
func (c *Conn) Closed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Ping checks server liveness end to end.
func (c *Conn) Ping(ctx context.Context) error {
	_, _, err := c.roundTrip(ctx, wire.TypePing, "")
	return err
}

// Exec runs a statement or semicolon-separated script on the server and
// reports the rows affected.
func (c *Conn) Exec(ctx context.Context, sql string) (Result, error) {
	complete, _, err := c.roundTrip(ctx, wire.TypeExec, sql)
	if err != nil {
		return Result{}, err
	}
	return Result{RowsAffected: complete.Rows}, nil
}

// Query runs a SELECT (or EXPLAIN) and returns its materialized result.
func (c *Conn) Query(ctx context.Context, sql string) (*Rows, error) {
	_, rows, err := c.roundTrip(ctx, wire.TypeQuery, sql)
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// roundTrip performs one pipelined request cycle: acquire a pipeline
// slot, send the frame, then wait for the reader goroutine to deliver
// the request's terminal answer. When ctx carries a deadline it is
// forwarded as the server-side timeout; when ctx is cancelled a Cancel
// frame asks the server to interrupt, and the cycle still ends on the
// server's terminal answer (an unresponsive server is cut off by the
// cancelGrace backstop, which poisons the connection).
func (c *Conn) roundTrip(ctx context.Context, kind wire.Type, sql string) (wire.Complete, *Rows, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return wire.Complete{}, nil, err
	}
	select {
	case <-c.slots:
	case <-c.dead:
		return wire.Complete{}, nil, c.closedErr()
	case <-ctx.Done():
		return wire.Complete{}, nil, ctx.Err()
	}
	defer func() { c.slots <- struct{}{} }()

	cl := &call{rows: &Rows{pos: -1}, done: make(chan struct{})}
	c.mu.Lock()
	if c.closed {
		err := c.cause
		c.mu.Unlock()
		return wire.Complete{}, nil, err
	}
	id := c.nextID
	c.nextID++
	c.pending[id] = cl
	c.mu.Unlock()

	var payload []byte
	if kind == wire.TypePing {
		payload = wire.AppendID(nil, id)
	} else {
		var timeoutMillis uint32
		if dl, ok := ctx.Deadline(); ok {
			if ms := time.Until(dl).Milliseconds(); ms > 0 {
				timeoutMillis = uint32(min(ms, int64(^uint32(0))))
			} else {
				timeoutMillis = 1
			}
		}
		payload = wire.AppendRequest(nil, wire.Request{ID: id, TimeoutMillis: timeoutMillis, SQL: sql})
	}
	if err := c.writeFrame(kind, payload); err != nil {
		err = fmt.Errorf("client: send: %w", err)
		c.fail(err)
		c.forget(id)
		return wire.Complete{}, nil, err
	}

	select {
	case <-cl.done:
	case <-ctx.Done():
		// Ask the server to interrupt; the terminal answer (code
		// "canceled" or a result that beat the cancel) still arrives on
		// the normal path and is what ends the wait.
		_ = c.writeFrame(wire.TypeCancel, wire.AppendID(nil, id))
		backstop := time.NewTimer(cancelGrace)
		defer backstop.Stop()
		select {
		case <-cl.done:
		case <-backstop.C:
			c.fail(fmt.Errorf("client: no answer %v after cancel: %w", cancelGrace, ctx.Err()))
			<-cl.done
		}
	}
	if cl.err != nil {
		return wire.Complete{}, nil, cl.err
	}
	return cl.complete, cl.rows, nil
}

// writeFrame serializes one frame onto the connection.
func (c *Conn) writeFrame(t wire.Type, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return wire.WriteFrame(c.conn, t, payload)
}

// readLoop is the demux goroutine: it decodes response frames and routes
// each to its pending call by request id until the connection ends.
func (c *Conn) readLoop() {
	buf := make([]byte, 4096)
	for {
		t, p, nbuf, err := wire.ReadFrame(c.conn, buf)
		buf = nbuf
		if err != nil {
			c.fail(fmt.Errorf("client: receive: %w", err))
			return
		}
		switch t {
		case wire.TypePong:
			id, err := wire.DecodeID(p)
			if err != nil {
				c.fail(err)
				return
			}
			c.finish(id, nil)
		case wire.TypeRowDesc:
			d, err := wire.DecodeRowDesc(p)
			if err != nil {
				c.fail(err)
				return
			}
			if cl := c.lookup(d.ID); cl != nil {
				cl.rows.cols, cl.rows.strategy = d.Columns, d.Strategy
			}
		case wire.TypeDataRow:
			id, row, err := wire.DecodeDataRow(p)
			if err != nil {
				c.fail(err)
				return
			}
			if cl := c.lookup(id); cl != nil {
				cl.rows.rows = append(cl.rows.rows, row)
			}
		case wire.TypeRowBatch:
			id, batch, err := wire.DecodeRowBatch(p)
			if err != nil {
				c.fail(err)
				return
			}
			if cl := c.lookup(id); cl != nil {
				cl.rows.rows = append(cl.rows.rows, batch...)
			}
		case wire.TypeComplete:
			done, err := wire.DecodeComplete(p)
			if err != nil {
				c.fail(err)
				return
			}
			if cl := c.lookup(done.ID); cl != nil {
				cl.complete = done
			}
			c.finish(done.ID, nil)
		case wire.TypeError:
			e, err := wire.DecodeError(p)
			if err != nil {
				c.fail(err)
				return
			}
			serr := &ServerError{Code: e.Code, Message: e.Message}
			if c.lookup(e.ID) != nil {
				c.finish(e.ID, serr)
			} else if e.Code == wire.CodeProtocol || e.Code == wire.CodeInternal {
				// A session-level failure: the server is about to drop the
				// connection, so every in-flight call fails with it.
				c.fail(serr)
				return
			}
		default:
			c.fail(fmt.Errorf("client: unexpected frame type %q", byte(t)))
			return
		}
	}
}

// lookup returns the pending call for id, nil when unknown.
func (c *Conn) lookup(id uint32) *call {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pending[id]
}

// finish retires a pending call with its terminal answer.
func (c *Conn) finish(id uint32, err error) {
	c.mu.Lock()
	cl := c.pending[id]
	delete(c.pending, id)
	c.mu.Unlock()
	if cl != nil {
		cl.err = err
		close(cl.done)
	}
}

// forget drops a call that never made it onto the wire.
func (c *Conn) forget(id uint32) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// fail poisons the connection after a transport-level failure — framing
// state is unknown, so no further request can trust the stream — and
// fails every in-flight call with the cause. Idempotent: the first
// failure wins.
func (c *Conn) fail(err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.cause = err
	stranded := c.pending
	c.pending = make(map[uint32]*call)
	close(c.dead)
	c.mu.Unlock()
	_ = c.conn.Close()
	for _, cl := range stranded {
		cl.err = err
		close(cl.done)
	}
}

// closedErr reports why the connection is unusable.
func (c *Conn) closedErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cause != nil {
		return c.cause
	}
	return ErrClosed
}

// Rows is a materialized query result, mirroring recdb.Rows: iterate
// with Next, read with Row or Scan.
type Rows struct {
	cols     []string
	strategy string
	rows     []Row
	pos      int
}

// NewRows builds a Rows from already-materialized tuples — for code
// that produces results client-side (the sharding router's merges, test
// fixtures) in the same shape the wire delivers them.
func NewRows(cols []string, strategy string, rows []Row) *Rows {
	return &Rows{cols: cols, strategy: strategy, rows: rows, pos: -1}
}

// Columns returns the result column names.
func (r *Rows) Columns() []string { return r.cols }

// Strategy reports the recommendation strategy the server's planner
// chose ("" for plain queries).
func (r *Rows) Strategy() string { return r.strategy }

// Len returns the number of rows.
func (r *Rows) Len() int { return len(r.rows) }

// Next advances to the next row.
func (r *Rows) Next() bool {
	if r.pos+1 >= len(r.rows) {
		return false
	}
	r.pos++
	return true
}

// Row returns the current row.
func (r *Rows) Row() Row {
	if r.pos < 0 || r.pos >= len(r.rows) {
		return nil
	}
	return r.rows[r.pos]
}

// All returns every row.
func (r *Rows) All() []Row { return r.rows }

// Scan copies the current row into dest pointers (*int64, *float64,
// *string, *bool, or *types.Value), exactly as recdb.Rows.Scan does.
func (r *Rows) Scan(dest ...any) error {
	if r.pos < 0 || r.pos >= len(r.rows) {
		return fmt.Errorf("client: Scan called without a current row")
	}
	return types.ScanRow(r.rows[r.pos], r.cols, dest...)
}
