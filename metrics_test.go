package recdb

import (
	"strings"
	"testing"
)

// TestDBMetrics exercises the public observability surface end to end: a
// durable database's counters reflect queries, WAL appends, and
// buffer-pool traffic, and the snapshot renders as the text recdb-cli's
// \metrics command prints.
func TestDBMetrics(t *testing.T) {
	db := newDB(t)
	dir := t.TempDir()
	if err := db.SaveTo(dir); err != nil {
		t.Fatal(err)
	}
	db.MustExec("INSERT INTO ratings VALUES (9, 9, 4.5)")
	for i := 0; i < 3; i++ {
		if _, err := db.Query("SELECT * FROM ratings"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Query("EXPLAIN ANALYZE SELECT * FROM ratings WHERE uid = 2"); err != nil {
		t.Fatal(err)
	}

	s := db.Metrics()
	wantAtLeast := map[string]int64{
		"exec.queries":          3,
		"exec.analyze_queries":  1,
		"exec.rows_returned":    1,
		"wal.appends":           1, // the durable INSERT
		"bufferpool.page_reads": 1,
	}
	for name, min := range wantAtLeast {
		got, ok := s.Get(name)
		if !ok {
			t.Fatalf("metric %s missing from snapshot", name)
		}
		if got < min {
			t.Errorf("%s = %d, want >= %d", name, got, min)
		}
	}

	// The query-latency histogram saw every plain query.
	var found bool
	for _, h := range s.Histograms {
		if h.Name == "exec.query_ns" {
			found = true
			if h.Count < 3 {
				t.Errorf("exec.query_ns count = %d, want >= 3", h.Count)
			}
			if h.P50 > h.P99 {
				t.Errorf("quantiles inverted: p50=%d p99=%d", h.P50, h.P99)
			}
		}
	}
	if !found {
		t.Fatal("exec.query_ns histogram missing")
	}

	// Text rendering (the \metrics format): one line per instrument,
	// histograms with count/mean/quantiles.
	text := s.String()
	for _, want := range []string{"exec.queries", "wal.appends", "exec.query_ns", "count=", "p99<="} {
		if !strings.Contains(text, want) {
			t.Errorf("String() missing %q:\n%s", want, text)
		}
	}
}
