package recdb

import (
	"strings"
	"testing"
	"time"
)

func newDB(t *testing.T, opts ...Option) *DB {
	t.Helper()
	db := Open(opts...)
	t.Cleanup(db.Close)
	db.MustExec(`CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT)`)
	db.MustExec(`INSERT INTO ratings VALUES
		(1, 1, 1.5),
		(2, 2, 3.5), (2, 1, 4.5), (2, 3, 2),
		(3, 2, 1), (3, 1, 2),
		(4, 2, 1)`)
	return db
}

func TestOpenExecQuery(t *testing.T) {
	db := newDB(t)
	rows, err := db.Query("SELECT uid, iid, ratingval FROM ratings WHERE uid = 2 ORDER BY iid")
	if err != nil {
		t.Fatal(err)
	}
	if got := rows.Columns(); len(got) != 3 || got[0] != "uid" {
		t.Fatalf("columns: %v", got)
	}
	if rows.Len() != 3 {
		t.Fatalf("len: %d", rows.Len())
	}
	var count int
	for rows.Next() {
		var uid, iid int64
		var rv float64
		if err := rows.Scan(&uid, &iid, &rv); err != nil {
			t.Fatal(err)
		}
		if uid != 2 {
			t.Fatalf("uid = %d", uid)
		}
		count++
	}
	if count != 3 {
		t.Fatalf("iterated %d rows", count)
	}
}

func TestScanVariants(t *testing.T) {
	db := newDB(t)
	db.MustExec("CREATE TABLE t (i INT, f FLOAT, s TEXT, b BOOLEAN)")
	db.MustExec("INSERT INTO t VALUES (7, 2.5, 'hello', TRUE)")
	rows, err := db.Query("SELECT i, f, s, b FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatal("no row")
	}
	var i int64
	var f float64
	var s string
	var b bool
	if err := rows.Scan(&i, &f, &s, &b); err != nil {
		t.Fatal(err)
	}
	if i != 7 || f != 2.5 || s != "hello" || !b {
		t.Fatalf("scanned %v %v %v %v", i, f, s, b)
	}
	// Coercions and errors.
	var v Value
	var f2, f3, f4 float64
	if err := rows.Scan(&f2, &f3, &v, &v); err != nil {
		t.Fatal(err) // int coerces to float; Value accepts anything
	}
	_ = f4
	if err := rows.Scan(&i, &f, &s); err == nil {
		t.Fatal("arity mismatch should fail")
	}
	if err := rows.Scan(&i, &f, &f, &b); err == nil {
		t.Fatal("text into float should fail")
	}
	if rows.Next() {
		t.Fatal("only one row expected")
	}
}

func TestEndToEndRecommendation(t *testing.T) {
	db := newDB(t)
	db.MustExec(`CREATE RECOMMENDER MovieRec ON ratings
		USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF`)
	rows, err := db.Query(`SELECT R.iid, R.ratingval FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
		WHERE R.uid = 1 ORDER BY R.ratingval DESC LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 2 || rows.Strategy() != "FilterRecommend" {
		t.Fatalf("len=%d strategy=%q", rows.Len(), rows.Strategy())
	}

	// Materialize and re-run: strategy switches to IndexRecommend with the
	// same answer.
	if err := db.Materialize("MovieRec"); err != nil {
		t.Fatal(err)
	}
	rows2, err := db.Query(`SELECT R.iid, R.ratingval FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
		WHERE R.uid = 1 ORDER BY R.ratingval DESC LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	if rows2.Strategy() != "IndexRecommend" {
		t.Fatalf("strategy after materialize: %q", rows2.Strategy())
	}
	if rows2.Len() != rows.Len() {
		t.Fatalf("results differ: %d vs %d", rows2.Len(), rows.Len())
	}
}

func TestModelBuildTime(t *testing.T) {
	db := newDB(t)
	db.MustExec(`CREATE RECOMMENDER r ON ratings USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval`)
	d, err := db.ModelBuildTime("r")
	if err != nil || d <= 0 {
		t.Fatalf("build time: %v %v", d, err)
	}
	if _, err := db.ModelBuildTime("nope"); err == nil {
		t.Fatal("missing recommender should fail")
	}
}

func TestStats(t *testing.T) {
	db := newDB(t)
	reads, _, _ := db.Stats()
	if reads == 0 {
		t.Fatal("inserts should have counted page reads")
	}
	db.ResetStats()
	if r, m, w := db.Stats(); r != 0 || m != 0 || w != 0 {
		t.Fatal("ResetStats should zero counters")
	}
}

func TestCacheDaemonLifecycle(t *testing.T) {
	db := newDB(t)
	db.MustExec(`CREATE RECOMMENDER r ON ratings USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval`)
	if err := db.StartCacheDaemon("r", 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := db.StopCacheDaemon("r"); err != nil {
		t.Fatal(err)
	}
	if err := db.StartCacheDaemon("missing", time.Second); err == nil {
		t.Fatal("missing recommender should fail")
	}
}

func TestRunCacheMaintenance(t *testing.T) {
	db := newDB(t, WithHotnessThreshold(0.1))
	db.MustExec(`CREATE RECOMMENDER r ON ratings USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval`)
	// Drive demand + consumption, then run maintenance.
	for i := 0; i < 5; i++ {
		if _, err := db.Query(`SELECT R.iid FROM ratings R
			RECOMMEND R.iid TO R.uid ON R.ratingval WHERE R.uid = 1`); err != nil {
			t.Fatal(err)
		}
	}
	db.MustExec("INSERT INTO ratings VALUES (4, 3, 2.0)")
	dec, err := db.RunCacheMaintenance("r")
	if err != nil {
		t.Fatal(err)
	}
	if dec.Admitted == 0 {
		t.Fatalf("maintenance admitted nothing: %+v", dec)
	}
}

func TestOptionsApply(t *testing.T) {
	db := Open(
		WithPoolPages(64),
		WithNeighborhoodSize(10),
		WithSVD(4, 5, 0.02, 0.1),
		WithRebuildThresholdPct(50),
		WithHotnessThreshold(0.9),
	)
	defer db.Close()
	db.MustExec(`CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT)`)
	db.MustExec(`INSERT INTO ratings VALUES (1,1,5),(1,2,3),(2,1,4)`)
	db.MustExec(`CREATE RECOMMENDER r ON ratings USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING SVD`)
	rows, err := db.Query(`SELECT R.iid, R.ratingval FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval USING SVD WHERE R.uid = 2`)
	if err != nil || rows.Len() != 1 {
		t.Fatalf("svd query: %v %v", rows, err)
	}
}

func TestErrorsSurface(t *testing.T) {
	db := Open()
	defer db.Close()
	if _, err := db.Exec("SELECT FROM"); err == nil {
		t.Fatal("syntax error should surface")
	}
	if _, err := db.Query("SELECT * FROM missing"); err == nil {
		t.Fatal("missing table should surface")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustExec should panic on error")
		}
	}()
	db.MustExec("NONSENSE")
}

func TestExecScript(t *testing.T) {
	db := Open()
	defer db.Close()
	res, err := db.ExecScript(`
		CREATE TABLE a (x INT);
		INSERT INTO a VALUES (1), (2), (3);
	`)
	if err != nil || res.RowsAffected != 3 {
		t.Fatalf("script: %v %v", res, err)
	}
	if _, err := db.ExecScript("CREATE TABLE b (x INT); BROKEN;"); err == nil {
		t.Fatal("script error should surface")
	}
}

func TestAlgorithmsList(t *testing.T) {
	algos := Algorithms()
	if len(algos) != 6 || algos[0] != "ItemCosCF" {
		t.Fatalf("algorithms: %v", algos)
	}
	joined := strings.Join(algos, ",")
	for _, want := range []string{"ItemPearCF", "UserCosCF", "UserPearCF", "SVD", "Popularity"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing %s in %v", want, algos)
		}
	}
}

func TestIntrospection(t *testing.T) {
	db := newDB(t)
	db.MustExec(`CREATE RECOMMENDER IntroRec ON ratings
		USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING SVD`)
	tables := db.Tables()
	names := map[string]bool{}
	for _, ti := range tables {
		names[ti.Name] = true
		if ti.Name == "ratings" && ti.Rows != 7 {
			t.Fatalf("ratings rows: %d", ti.Rows)
		}
	}
	if !names["ratings"] || !names["_rec_introrec_userfactor"] {
		t.Fatalf("tables: %v", tables)
	}
	recs := db.Recommenders()
	if len(recs) != 1 || recs[0].Name != "IntroRec" || recs[0].Algorithm != "SVD" {
		t.Fatalf("recommenders: %+v", recs)
	}
	if recs[0].BuildTime <= 0 || recs[0].Rebuilds != 0 {
		t.Fatalf("recommender stats: %+v", recs[0])
	}
}
