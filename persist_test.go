package recdb

import (
	"testing"
)

func TestSaveToOpenDir(t *testing.T) {
	db := newDB(t)
	db.MustExec(`CREATE RECOMMENDER R ON ratings
		USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF`)
	dir := t.TempDir()
	if err := db.SaveTo(dir); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()

	rows, err := db2.Query("SELECT COUNT(*) FROM ratings")
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	var n int64
	if err := rows.Scan(&n); err != nil || n != 7 {
		t.Fatalf("loaded rating count: %d, %v", n, err)
	}

	// The recommender works after reopening.
	rec, err := db2.Query(`SELECT R.iid FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
		WHERE R.uid = 1`)
	if err != nil || rec.Len() != 2 {
		t.Fatalf("recommendation after reopen: %v, %v", rec, err)
	}
}

func TestOpenDirMissing(t *testing.T) {
	if _, err := OpenDir(t.TempDir()); err == nil {
		t.Fatal("missing snapshot should fail")
	}
}

func TestWALRecoversCommitsAfterCheckpoint(t *testing.T) {
	db := newDB(t)
	db.MustExec(`CREATE RECOMMENDER R ON ratings
		USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF`)
	dir := t.TempDir()
	if err := db.SaveTo(dir); err != nil {
		t.Fatal(err)
	}
	// These statements land only in the WAL — no second SaveTo.
	db.MustExec("INSERT INTO ratings VALUES (1, 3, 5.0), (4, 1, 2.5)")
	db.MustExec("CREATE TABLE extras (id INT PRIMARY KEY, note TEXT)")
	db.MustExec("INSERT INTO extras VALUES (1, 'logged')")
	info := db.Durability()
	if !info.Attached || info.Dir != dir || info.WALSeq != 3 {
		t.Fatalf("durability = %+v", info)
	}
	db.Close()

	db2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rows, err := db2.Query("SELECT COUNT(*) FROM ratings")
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	var n int64
	if err := rows.Scan(&n); err != nil || n != 9 {
		t.Fatalf("ratings after WAL replay: %d, %v", n, err)
	}
	rows, err = db2.Query("SELECT note FROM extras WHERE id = 1")
	if err != nil || rows.Len() != 1 {
		t.Fatalf("extras after WAL replay: %v, %v", rows, err)
	}

	// Replay resumed the sequence: the next commit gets seq 4.
	db2.MustExec("INSERT INTO extras VALUES (2, 'post-recovery')")
	if got := db2.Durability().WALSeq; got != 4 {
		t.Fatalf("WALSeq after recovery commit = %d, want 4", got)
	}

	// A checkpoint resets the log but keeps the sequence monotonic.
	if err := db2.SaveTo(dir); err != nil {
		t.Fatal(err)
	}
	db2.MustExec("INSERT INTO extras VALUES (3, 'post-checkpoint')")
	db3, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	rows, err = db3.Query("SELECT COUNT(*) FROM extras")
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	if err := rows.Scan(&n); err != nil || n != 3 {
		t.Fatalf("extras after second recovery: %d, %v", n, err)
	}
}
