package recdb

import (
	"testing"
)

func TestSaveToOpenDir(t *testing.T) {
	db := newDB(t)
	db.MustExec(`CREATE RECOMMENDER R ON ratings
		USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF`)
	dir := t.TempDir()
	if err := db.SaveTo(dir); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()

	rows, err := db2.Query("SELECT COUNT(*) FROM ratings")
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	var n int64
	if err := rows.Scan(&n); err != nil || n != 7 {
		t.Fatalf("loaded rating count: %d, %v", n, err)
	}

	// The recommender works after reopening.
	rec, err := db2.Query(`SELECT R.iid FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
		WHERE R.uid = 1`)
	if err != nil || rec.Len() != 2 {
		t.Fatalf("recommendation after reopen: %v, %v", rec, err)
	}
}

func TestOpenDirMissing(t *testing.T) {
	if _, err := OpenDir(t.TempDir()); err == nil {
		t.Fatal("missing snapshot should fail")
	}
}
