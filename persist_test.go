package recdb

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestSaveToOpenDir(t *testing.T) {
	db := newDB(t)
	db.MustExec(`CREATE RECOMMENDER R ON ratings
		USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF`)
	dir := t.TempDir()
	if err := db.SaveTo(dir); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()

	rows, err := db2.Query("SELECT COUNT(*) FROM ratings")
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	var n int64
	if err := rows.Scan(&n); err != nil || n != 7 {
		t.Fatalf("loaded rating count: %d, %v", n, err)
	}

	// The recommender works after reopening.
	rec, err := db2.Query(`SELECT R.iid FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
		WHERE R.uid = 1`)
	if err != nil || rec.Len() != 2 {
		t.Fatalf("recommendation after reopen: %v, %v", rec, err)
	}
}

// TestConcurrentDurableWritesReplayInOrder hammers one durable key from
// many writers. Mutating statements hold db.mu exclusively, so the WAL
// records them in the order they were applied; recovery must therefore
// reconstruct exactly the value the live database last served — never a
// reordering where an earlier update is replayed after a later one.
func TestConcurrentDurableWritesReplayInOrder(t *testing.T) {
	dir := t.TempDir()
	db := Open()
	db.MustExec("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
	db.MustExec("INSERT INTO kv VALUES (1, -1)")
	if err := db.SaveTo(dir); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				db.MustExec(fmt.Sprintf("UPDATE kv SET v = %d WHERE k = 1", w*100+i))
			}
		}(w)
	}
	wg.Wait()
	rows, err := db.Query("SELECT v FROM kv WHERE k = 1")
	if err != nil || !rows.Next() {
		t.Fatalf("live read: %v", err)
	}
	var live int64
	if err := rows.Scan(&live); err != nil {
		t.Fatal(err)
	}
	db.Close()

	re, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rows, err = re.Query("SELECT v FROM kv WHERE k = 1")
	if err != nil || !rows.Next() {
		t.Fatalf("recovered read: %v", err)
	}
	var recovered int64
	if err := rows.Scan(&recovered); err != nil {
		t.Fatal(err)
	}
	if recovered != live {
		t.Fatalf("recovered v = %d, live database served %d: WAL order diverged from apply order", recovered, live)
	}
}

// TestSaveToPathVariantsCheckpointInPlace checkpoints to the same
// directory spelled differently (trailing separator). That must take the
// in-place branch — reset the log to a single fresh segment — not attach
// a second log on top of the old segments in the same wal directory.
func TestSaveToPathVariantsCheckpointInPlace(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snap")
	db := Open()
	defer db.Close()
	db.MustExec("CREATE TABLE t (a INT PRIMARY KEY)")
	if err := db.SaveTo(dir); err != nil {
		t.Fatal(err)
	}
	db.MustExec("INSERT INTO t VALUES (1)")
	if err := db.SaveTo(dir + string(filepath.Separator)); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(filepath.Join(dir, walSubdir))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("wal dir holds %d segments after in-place checkpoint, want 1: %v", len(ents), names)
	}
	// And the checkpoint is coherent: commits keep logging, recovery sees
	// everything.
	db.MustExec("INSERT INTO t VALUES (2)")
	re, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rows, err := re.Query("SELECT COUNT(*) FROM t")
	if err != nil || !rows.Next() {
		t.Fatalf("recovered read: %v", err)
	}
	var n int64
	if err := rows.Scan(&n); err != nil || n != 2 {
		t.Fatalf("recovered rows = %d, %v (want 2)", n, err)
	}
}

func TestOpenDirMissing(t *testing.T) {
	if _, err := OpenDir(t.TempDir()); err == nil {
		t.Fatal("missing snapshot should fail")
	}
}

func TestWALRecoversCommitsAfterCheckpoint(t *testing.T) {
	db := newDB(t)
	db.MustExec(`CREATE RECOMMENDER R ON ratings
		USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF`)
	dir := t.TempDir()
	if err := db.SaveTo(dir); err != nil {
		t.Fatal(err)
	}
	// These statements land only in the WAL — no second SaveTo.
	db.MustExec("INSERT INTO ratings VALUES (1, 3, 5.0), (4, 1, 2.5)")
	db.MustExec("CREATE TABLE extras (id INT PRIMARY KEY, note TEXT)")
	db.MustExec("INSERT INTO extras VALUES (1, 'logged')")
	// The multi-row insert logs as an atomic group of four records
	// (TxnBegin, two inserts, TxnCommit); the DDL and single-row insert
	// log one record each.
	info := db.Durability()
	if !info.Attached || info.Dir != dir || info.WALSeq != 6 {
		t.Fatalf("durability = %+v", info)
	}
	db.Close()

	db2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rows, err := db2.Query("SELECT COUNT(*) FROM ratings")
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	var n int64
	if err := rows.Scan(&n); err != nil || n != 9 {
		t.Fatalf("ratings after WAL replay: %d, %v", n, err)
	}
	rows, err = db2.Query("SELECT note FROM extras WHERE id = 1")
	if err != nil || rows.Len() != 1 {
		t.Fatalf("extras after WAL replay: %v, %v", rows, err)
	}

	// Replay resumed the sequence: the next commit gets seq 7.
	db2.MustExec("INSERT INTO extras VALUES (2, 'post-recovery')")
	if got := db2.Durability().WALSeq; got != 7 {
		t.Fatalf("WALSeq after recovery commit = %d, want 7", got)
	}

	// A checkpoint resets the log but keeps the sequence monotonic.
	if err := db2.SaveTo(dir); err != nil {
		t.Fatal(err)
	}
	db2.MustExec("INSERT INTO extras VALUES (3, 'post-checkpoint')")
	db3, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	rows, err = db3.Query("SELECT COUNT(*) FROM extras")
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	if err := rows.Scan(&n); err != nil || n != 3 {
		t.Fatalf("extras after second recovery: %d, %v", n, err)
	}
}
