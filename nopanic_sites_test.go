package recdb

import (
	"strings"
	"testing"
)

// The three //lint:ignore nopanic sites in the module are sanctioned
// panics: each is either a documented API contract or an internal
// invariant no user input can reach. These tests pin those contracts so a
// future refactor that widens panic reachability fails loudly instead of
// silently inheriting the suppression.

// TestMustExecPanicsOnError pins MustExec's documented contract
// (recdb.go): it mirrors template.Must, converting an error into a panic
// for example and test code. The panic is the API, not an escape hatch.
func TestMustExecPanicsOnError(t *testing.T) {
	db := Open()
	defer db.Close()

	db.MustExec("CREATE TABLE t (id INT)")
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MustExec on invalid SQL must panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.HasPrefix(msg, "recdb: ") {
			t.Fatalf("panic value = %v, want a recdb-prefixed message", r)
		}
	}()
	db.MustExec("THIS IS NOT SQL")
}

// TestMustExecReturnsOnSuccess covers the non-panicking half.
func TestMustExecReturnsOnSuccess(t *testing.T) {
	db := Open()
	defer db.Close()

	db.MustExec("CREATE TABLE t (id INT)")
	res := db.MustExec("INSERT INTO t VALUES (1)")
	if res.RowsAffected != 1 {
		t.Fatalf("RowsAffected = %d, want 1", res.RowsAffected)
	}
}

// TestUserInputCannotReachSanctionedPanics drives adversarial SQL through
// the public API and asserts every failure surfaces as an error, not a
// panic: the storage-layer panic sites (AsPage's size check, BufferPool's
// unpin-of-unpinned check) stay unreachable from user input because all
// page buffers are pool frames and every pin is released exactly once.
func TestUserInputCannotReachSanctionedPanics(t *testing.T) {
	db := Open()
	defer db.Close()

	stmts := []string{
		"CREATE TABLE t (id INT, name TEXT)",
		"INSERT INTO t VALUES (1, 'a')",
		"INSERT INTO t VALUES (notanumber, )",
		"SELECT missing FROM t",
		"SELECT * FROM nosuchtable",
		"DELETE FROM t WHERE",
		"UPDATE t SET",
		"DROP TABLE nosuchtable",
		"INSERT INTO t VALUES (2, 'b')",
		"SELECT * FROM t WHERE id = 1",
	}
	for _, s := range stmts {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("statement %q panicked: %v", s, r)
				}
			}()
			_, _ = db.Exec(s)
		}()
	}
}
