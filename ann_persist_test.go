package recdb

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// newVectorDB seeds a database whose item universe is large enough that
// the planner's vector strategy runs in probe mode (well above the
// exact-fallback threshold), with genre-structured ratings so the SVD
// latent space actually clusters.
func newVectorDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	t.Cleanup(db.Close)
	db.MustExec(`CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT)`)
	const users, items, perUser = 30, 200, 30
	rng := uint64(99)
	next := func(n int) int {
		rng = rng*2862933555777941757 + 3037000493
		return int((rng >> 33) % uint64(n))
	}
	var rows []string
	for u := 1; u <= users; u++ {
		seen := map[int]bool{}
		for len(seen) < perUser {
			i := 1 + next(items)
			if seen[i] {
				continue
			}
			seen[i] = true
			v := 2
			if u%6 == i%6 {
				v = 5
			}
			rows = append(rows, fmt.Sprintf("(%d, %d, %d)", u, i, v+next(2)))
		}
	}
	db.MustExec("INSERT INTO ratings VALUES " + strings.Join(rows, ", "))
	db.MustExec(`CREATE RECOMMENDER VecRec ON ratings
		USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING SVD`)
	return db
}

const vecQuery = `SELECT R.uid, R.iid, R.ratingval FROM ratings R
	RECOMMEND R.iid TO R.uid ON R.ratingval USING SVD
	WHERE R.uid = 1 ORDER BY R.ratingval DESC LIMIT 10`

// explainStrategy returns the strategy line of EXPLAIN output.
func explainStrategy(t *testing.T, db *DB, q string) string {
	t.Helper()
	rows, err := db.Query("EXPLAIN " + q)
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
		var line string
		if err := rows.Scan(&line); err != nil {
			t.Fatal(err)
		}
		if strings.HasPrefix(line, "strategy: ") {
			return strings.TrimPrefix(line, "strategy: ")
		}
	}
	t.Fatalf("EXPLAIN output has no strategy line")
	return ""
}

// topK materializes q's (uid, iid, score) rows.
func topK(t *testing.T, db *DB, q string) [][3]interface{} {
	t.Helper()
	rows, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	var out [][3]interface{}
	for rows.Next() {
		var uid, iid int64
		var score float64
		if err := rows.Scan(&uid, &iid, &score); err != nil {
			t.Fatal(err)
		}
		out = append(out, [3]interface{}{uid, iid, score})
	}
	return out
}

// TestVectorIndexSurvivesCheckpointRecovery: after a checkpoint and
// reopen, the recommender (and its IVF index) is rebuilt from the
// recovered ratings, the planner still picks the vector strategy, and the
// deterministic retrain reproduces the exact same top-k.
func TestVectorIndexSurvivesCheckpointRecovery(t *testing.T) {
	db := newVectorDB(t)
	if got := explainStrategy(t, db, vecQuery); got != "VectorRecommend" {
		t.Fatalf("strategy before checkpoint: %s", got)
	}
	before := topK(t, db, vecQuery)
	if len(before) != 10 {
		t.Fatalf("expected 10 rows, got %d", len(before))
	}

	dir := t.TempDir()
	if err := db.SaveTo(dir); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()

	if got := explainStrategy(t, db2, vecQuery); got != "VectorRecommend" {
		t.Fatalf("strategy after recovery: %s", got)
	}
	after := topK(t, db2, vecQuery)
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("top-k changed across checkpoint+recovery:\nbefore: %v\nafter:  %v", before, after)
	}
}

// TestVectorIndexCorruptionFallsBackToExactScan sweeps corruption over
// the persisted index table (_rec_vecrec_annivf): damaged first chunk,
// damaged last chunk, a deleted tail, and a fully emptied table. In every
// case the planner must detect the bad index at decode time, fall back to
// the exact scan strategy, and return exactly the exact plan's rows — a
// corrupt index may cost speed, never correctness.
func TestVectorIndexCorruptionFallsBackToExactScan(t *testing.T) {
	// The exact baseline from an uncorrupted twin with the vector path
	// disabled by hand.
	base := newVectorDB(t)
	base.eng.Planner().DisableVectorRecommend = true
	want := topK(t, base, vecQuery)
	if len(want) != 10 {
		t.Fatalf("baseline expected 10 rows, got %d", len(want))
	}

	chunks := func(db *DB) int64 {
		rows, err := db.Query("SELECT COUNT(*) FROM _rec_vecrec_annivf")
		if err != nil {
			t.Fatal(err)
		}
		rows.Next()
		var n int64
		if err := rows.Scan(&n); err != nil {
			t.Fatal(err)
		}
		return n
	}

	cases := []struct {
		name    string
		corrupt func(db *DB)
	}{
		{"first-chunk-garbled", func(db *DB) {
			db.MustExec("UPDATE _rec_vecrec_annivf SET chunk = '!!not base64!!' WHERE seq = 0")
		}},
		{"last-chunk-garbled", func(db *DB) {
			// Valid base64, wrong bytes: the trailing checksum must catch it.
			db.MustExec(fmt.Sprintf(
				"UPDATE _rec_vecrec_annivf SET chunk = 'AAAAAAAAAAAA' WHERE seq = %d", chunks(db)-1))
		}},
		{"truncated-tail", func(db *DB) {
			db.MustExec(fmt.Sprintf("DELETE FROM _rec_vecrec_annivf WHERE seq >= %d", chunks(db)/2))
		}},
		{"emptied", func(db *DB) {
			db.MustExec("DELETE FROM _rec_vecrec_annivf")
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db := newVectorDB(t)
			// Corrupt before the first vector query: the index decodes
			// lazily, so this is the state the planner will actually read.
			tc.corrupt(db)
			if got := explainStrategy(t, db, vecQuery); got != "FilterRecommend" {
				t.Fatalf("corrupt index did not fall back: strategy %s", got)
			}
			got := topK(t, db, vecQuery)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("fallback rows diverge from exact plan:\ngot:  %v\nwant: %v", got, want)
			}
			if n, ok := db.Metrics().Get("ann.decode_failures"); !ok || n == 0 {
				t.Fatalf("ann.decode_failures not incremented (n=%d ok=%v)", n, ok)
			}
		})
	}
}
