package recdb

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"recdb/internal/engine"
	"recdb/internal/sql"
)

// ErrTxDone is returned by operations on a transaction that has already
// been committed or rolled back.
var ErrTxDone = errors.New("recdb: transaction already committed or rolled back")

// ErrSessionClosed is returned by operations on a closed Session.
var ErrSessionClosed = errors.New("recdb: session is closed")

// ---- Write gates ----
//
// Writers are serialized by channel semaphores ("gates") rather than
// mutexes so a writer blocked behind a long transaction can honor its
// context deadline. One gate per table serializes same-table appliers
// (WAL order = apply order per table); a single transaction gate admits
// one explicit transaction at a time. Because an autocommit statement
// holds at most one table gate and the only multi-gate holder is the one
// admitted transaction, gate acquisition order can never form a cycle.

// txnGate returns the singleton transaction-admission gate.
func (db *DB) txnGate() chan struct{} {
	db.gateMu.Lock()
	defer db.gateMu.Unlock()
	if db.txnSem == nil {
		db.txnSem = make(chan struct{}, 1)
	}
	return db.txnSem
}

// tableGate returns the write gate for a table, creating it on first use.
// Gates outlive DROP TABLE; a stale gate for a dropped table is harmless.
func (db *DB) tableGate(name string) chan struct{} {
	key := strings.ToLower(name)
	db.gateMu.Lock()
	defer db.gateMu.Unlock()
	if db.tableGates == nil {
		db.tableGates = make(map[string]chan struct{})
	}
	ch, ok := db.tableGates[key]
	if !ok {
		ch = make(chan struct{}, 1)
		db.tableGates[key] = ch
	}
	return ch
}

// acquireGate takes a gate, giving up when the context is done.
func acquireGate(ctx context.Context, gate chan struct{}) error {
	select {
	case gate <- struct{}{}:
		return nil
	default:
	}
	select {
	case gate <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func releaseGate(gate chan struct{}) { <-gate }

// ---- Tx ----

// Tx is an explicit multi-statement transaction. Its writes are applied
// eagerly (the transaction reads its own writes) but reach the
// write-ahead log only at Commit, as one atomic record group: after a
// crash, recovery replays either all of the transaction or none of it.
// Rollback undoes the applied writes in memory.
//
// A transaction pins a snapshot of every table it touches (so concurrent
// readers keep their consistent view), holds the database's shared lock
// for its whole lifetime (so a SaveTo checkpoint can never capture
// uncommitted writes), and takes each touched table's write gate on
// first touch. Only one explicit transaction runs at a time; autocommit
// writers to untouched tables proceed concurrently. A Tx is not safe
// for concurrent use by multiple goroutines.
//
// Always finish a transaction: an abandoned Tx holds its locks forever.
// Rollback after Commit is a no-op, so `defer tx.Rollback()` is the
// idiomatic cleanup.
type Tx struct {
	db    *DB
	etx   *engine.Txn
	gates map[string]chan struct{} // held table gates, keyed by folded name
	done  bool
}

// Begin opens an explicit transaction. It blocks until any other
// explicit transaction finishes.
func (db *DB) Begin() (*Tx, error) {
	return db.BeginContext(context.Background())
}

// BeginContext is Begin under a context: a deadline bounds the wait for
// the transaction-admission gate.
func (db *DB) BeginContext(ctx context.Context) (*Tx, error) {
	if err := acquireGate(ctx, db.txnGate()); err != nil {
		return nil, err
	}
	db.mu.RLock()
	return &Tx{db: db, etx: db.eng.BeginTxn(), gates: make(map[string]chan struct{})}, nil
}

// lockTable takes a table's write gate if this transaction does not hold
// it yet.
func (tx *Tx) lockTable(ctx context.Context, name string) error {
	key := strings.ToLower(name)
	if _, held := tx.gates[key]; held {
		return nil
	}
	gate := tx.db.tableGate(key)
	if err := acquireGate(ctx, gate); err != nil {
		return err
	}
	tx.gates[key] = gate
	return nil
}

// release drops every lock the transaction holds, in the reverse order
// Begin acquired them.
func (tx *Tx) release() {
	for _, gate := range tx.gates {
		releaseGate(gate)
	}
	tx.gates = nil
	//lint:ignore locksafe the matching RLock is in BeginContext; Commit/Rollback guard the single release with tx.done
	tx.db.mu.RUnlock()
	releaseGate(tx.db.txnGate())
}

// Exec runs one statement inside the transaction: INSERT, DELETE,
// UPDATE, or a read. DDL and nested BEGIN are rejected; use Commit and
// Rollback (not SQL text) to finish the transaction.
func (tx *Tx) Exec(query string) (Result, error) {
	return tx.ExecContext(context.Background(), query)
}

// ExecContext is Exec under a context.
func (tx *Tx) ExecContext(ctx context.Context, query string) (Result, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return Result{}, err
	}
	switch stmt.(type) {
	case *sql.Commit, *sql.Rollback:
		return Result{}, fmt.Errorf("recdb: use Tx.Commit or Tx.Rollback to finish a Tx")
	}
	return tx.execParsed(ctx, stmt, query)
}

// execParsed runs one pre-parsed statement inside the transaction,
// taking the target table's write gate first for DML.
func (tx *Tx) execParsed(ctx context.Context, stmt sql.Statement, text string) (Result, error) {
	if tx.done {
		return Result{}, ErrTxDone
	}
	if engine.IsDML(stmt) {
		if err := tx.lockTable(ctx, dmlTarget(stmt)); err != nil {
			return Result{}, err
		}
	}
	r, err := tx.etx.ExecParsedCtx(ctx, stmt, text)
	return Result{RowsAffected: r.RowsAffected}, err
}

// Query runs a SELECT inside the transaction. Because writes apply
// eagerly, the transaction sees its own uncommitted writes.
func (tx *Tx) Query(query string) (*Rows, error) {
	return tx.QueryContext(context.Background(), query)
}

// QueryContext is Query under a context.
func (tx *Tx) QueryContext(ctx context.Context, query string) (*Rows, error) {
	if tx.done {
		return nil, ErrTxDone
	}
	return tx.db.QueryContext(ctx, query)
}

// Commit makes the transaction's writes durable as one atomic WAL
// group and releases its locks and snapshot pins. If the WAL append
// fails the writes remain applied in memory but are not guaranteed to
// survive a crash; the error says so.
func (tx *Tx) Commit() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	err := tx.etx.Commit()
	tx.release()
	return err
}

// Rollback undoes the transaction's writes and releases its locks and
// snapshot pins. Rolling back a finished transaction is a no-op, so it
// is safe to defer.
func (tx *Tx) Rollback() error {
	if tx.done {
		return nil
	}
	tx.done = true
	err := tx.etx.Rollback()
	tx.release()
	return err
}

// ---- Session ----

// Session is a statement-stream context that makes the SQL transaction
// control statements (BEGIN/COMMIT/ROLLBACK) work: it tracks the one
// open transaction between ExecContext calls and routes statements
// through it. The server gives every client connection its own Session;
// ExecScript runs each script through an ephemeral one. Closing a
// session rolls back its open transaction — that is how a client that
// disconnects mid-transaction is cleaned up. A Session is not safe for
// concurrent use by multiple goroutines.
type Session struct {
	db     *DB
	tx     *Tx
	closed bool
}

// NewSession opens a session. Close it when done; Close rolls back any
// transaction left open.
func (db *DB) NewSession() *Session {
	return &Session{db: db}
}

// Exec runs a semicolon-separated statement stream in the session — see
// ExecContext.
func (s *Session) Exec(script string) (Result, error) {
	return s.ExecContext(context.Background(), script)
}

// ExecContext runs a semicolon-separated statement stream in the
// session, stopping at the first error. BEGIN opens a transaction that
// stays open across calls until COMMIT or ROLLBACK; statements in
// between run inside it.
func (s *Session) ExecContext(ctx context.Context, script string) (Result, error) {
	if s.closed {
		return Result{}, ErrSessionClosed
	}
	stmts, err := sql.ParseScript(script)
	if err != nil {
		return Result{}, err
	}
	var total Result
	for _, st := range stmts {
		r, err := s.execParsed(ctx, st.Stmt, st.Text)
		if err != nil {
			return total, err
		}
		total.RowsAffected += r.RowsAffected
	}
	return total, nil
}

// execParsed dispatches one statement: transaction control mutates the
// session's transaction state, everything else runs in the open
// transaction if there is one and autocommits otherwise.
func (s *Session) execParsed(ctx context.Context, stmt sql.Statement, text string) (Result, error) {
	if s.closed {
		return Result{}, ErrSessionClosed
	}
	switch stmt.(type) {
	case *sql.Begin:
		if s.tx != nil {
			return Result{}, fmt.Errorf("recdb: BEGIN: a transaction is already open in this session")
		}
		tx, err := s.db.BeginContext(ctx)
		if err != nil {
			return Result{}, err
		}
		s.tx = tx
		return Result{}, nil
	case *sql.Commit:
		if s.tx == nil {
			return Result{}, fmt.Errorf("recdb: COMMIT without an open transaction")
		}
		tx := s.tx
		s.tx = nil
		return Result{}, tx.Commit()
	case *sql.Rollback:
		if s.tx == nil {
			return Result{}, fmt.Errorf("recdb: ROLLBACK without an open transaction")
		}
		tx := s.tx
		s.tx = nil
		return Result{}, tx.Rollback()
	}
	if s.tx != nil {
		return s.tx.execParsed(ctx, stmt, text)
	}
	return s.db.execStmt(ctx, stmt, text)
}

// QueryContext runs a SELECT in the session; inside a transaction it
// sees the transaction's own writes.
func (s *Session) QueryContext(ctx context.Context, query string) (*Rows, error) {
	if s.closed {
		return nil, ErrSessionClosed
	}
	if s.tx != nil {
		return s.tx.QueryContext(ctx, query)
	}
	return s.db.QueryContext(ctx, query)
}

// Query is QueryContext with a background context.
func (s *Session) Query(query string) (*Rows, error) {
	return s.QueryContext(context.Background(), query)
}

// InTransaction reports whether the session has an open transaction.
func (s *Session) InTransaction() bool { return s.tx != nil }

// Close ends the session, rolling back any open transaction. It is
// idempotent; the error (if any) is the rollback's.
func (s *Session) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if s.tx != nil {
		tx := s.tx
		s.tx = nil
		return tx.Rollback()
	}
	return nil
}
