module recdb

go 1.22
