// Package recdb is an embeddable Go reproduction of RecDB ("Database
// System Support for Personalized Recommendation Applications", ICDE
// 2017): a relational database engine with recommendation functionality
// built into the kernel.
//
// The engine speaks a SQL dialect extended with the paper's statements:
//
//	CREATE RECOMMENDER MovieRec ON ratings
//	    USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval
//	    USING ItemCosCF;
//
//	SELECT R.iid, R.ratingval FROM ratings AS R
//	    RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
//	    WHERE R.uid = 1
//	    ORDER BY R.ratingval DESC LIMIT 10;
//
// Six recommendation algorithms are supported: the paper's five (ItemCosCF,
// ItemPearCF, UserCosCF, UserPearCF, SVD) plus a non-personalized
// Popularity extension. Recommendation runs as query operators
// inside the executor — RECOMMEND, FILTERRECOMMEND, JOINRECOMMEND, and
// INDEXRECOMMEND — so selections, joins, and top-k ranking compose with it
// in a single plan. Pre-computation (the RecScoreIndex) and hotness-based
// caching further cut latency for interactive workloads.
//
// Quick start:
//
//	db := recdb.Open()
//	defer db.Close()
//	db.MustExec(`CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT)`)
//	db.MustExec(`INSERT INTO ratings VALUES (1, 1, 4.5), (1, 2, 3.0), (2, 1, 5.0)`)
//	db.MustExec(`CREATE RECOMMENDER R ON ratings USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval`)
//	rows, _ := db.Query(`SELECT R.iid, R.ratingval FROM ratings R
//	    RECOMMEND R.iid TO R.uid ON R.ratingval WHERE R.uid = 2
//	    ORDER BY R.ratingval DESC LIMIT 10`)
//	for rows.Next() {
//	    var item int64
//	    var score float64
//	    _ = rows.Scan(&item, &score)
//	}
package recdb

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"recdb/internal/engine"
	"recdb/internal/fault"
	"recdb/internal/rec"
	"recdb/internal/reccache"
	"recdb/internal/sql"
	"recdb/internal/types"
	"recdb/internal/wal"
)

// Value is a SQL value (NULL, BIGINT, DOUBLE, TEXT, BOOLEAN, or GEOMETRY).
type Value = types.Value

// Row is one result tuple.
type Row = types.Row

// Option configures Open.
type Option func(*engine.Config)

// WithPoolPages sets the per-table buffer-pool capacity in 8 KiB pages.
func WithPoolPages(n int) Option {
	return func(c *engine.Config) { c.PoolPages = n }
}

// WithNeighborhoodSize truncates similarity lists to the top-N most
// similar entries (0 keeps full lists, the paper's default). Smaller
// neighborhoods trade a little accuracy for much faster prediction.
func WithNeighborhoodSize(n int) Option {
	return func(c *engine.Config) { c.Rec.Build.NeighborhoodSize = n }
}

// WithSVD sets the matrix-factorization hyperparameters (factor count,
// SGD epochs, learning rate, and the regularization λ of Equation 3).
func WithSVD(factors, epochs int, rate, lambda float64) Option {
	return func(c *engine.Config) {
		c.Rec.Build.SVDFactors = factors
		c.Rec.Build.SVDEpochs = epochs
		c.Rec.Build.SVDRate = rate
		c.Rec.Build.SVDLambda = lambda
	}
}

// WithRebuildThresholdPct sets N of the maintenance policy: models rebuild
// when new ratings reach N% of the ratings used for the current model.
func WithRebuildThresholdPct(pct float64) Option {
	return func(c *engine.Config) { c.Rec.RebuildThresholdPct = pct }
}

// WithHotnessThreshold sets HOTNESS-THRESHOLD for the recommendation
// cache: 0 materializes every user/item pair, 1 materializes nothing.
func WithHotnessThreshold(t float64) Option {
	return func(c *engine.Config) { c.HotnessThreshold = t }
}

// WithWALSyncEvery sets the write-ahead log's group-commit factor: 1
// (the default) fsyncs on every commit, n > 1 fsyncs every n commits (a
// crash can lose the last < n acknowledged statements), and a negative
// value never fsyncs (durability rides on SaveTo checkpoints alone).
func WithWALSyncEvery(n int) Option {
	return func(c *engine.Config) { c.WALSyncEvery = n }
}

// WithWALSyncInterval bounds group-commit latency: together with
// WithWALSyncEvery(n > 1), the write-ahead log fsyncs after n commits *or*
// d after the first unsynced commit, whichever comes first. Without it, a
// burst that ends mid-group strands its last < n commits unsynced until
// the next burst — exactly the shape server workloads produce. It has no
// effect under the default per-commit sync (n = 1) or the never-sync
// policy (n < 0).
func WithWALSyncInterval(d time.Duration) Option {
	return func(c *engine.Config) { c.WALSyncInterval = d }
}

// WithSnapshotRetain sets how many snapshot generations SaveTo keeps on
// disk (default 2: the previous good snapshot always survives the next
// checkpoint). Deeper retention costs disk space but lets OpenDir fall
// back past that many corrupt newer generations.
func WithSnapshotRetain(n int) Option {
	return func(c *engine.Config) { c.SnapshotRetain = n }
}

// DB is an embedded RecDB instance. It is safe for concurrent readers;
// writes are serialized per table, so writers to different tables
// proceed concurrently. Multi-statement transactions are opened with
// Begin (or BEGIN through a Session) — see Tx.
type DB struct {
	eng *engine.Engine

	// mu frames durability and DDL: DML statements hold it shared (plus
	// their table's write gate, which serializes same-table appliers so
	// WAL order equals apply order per table), while DDL, SaveTo, and
	// Close hold it exclusively. An open transaction holds the shared
	// side for its whole lifetime, so a checkpoint can never capture
	// eagerly-applied uncommitted writes. Read-only statements never take
	// it: they read through page-level snapshots (storage.Snapshot) and
	// the catalog's atomically published generation, so a reader observes
	// each statement either fully applied or not at all without blocking
	// on a writer stalled in a WAL fsync.
	mu           sync.RWMutex
	fs           fault.FS // filesystem for durability (nil until attached)
	dir          string   // durable home ("" while purely in-memory)
	wal          *wal.Log // write-ahead log (nil until attached)
	gen          uint64   // snapshot generation last written or recovered
	skipped      int      // corrupt generations skipped during recovery
	walSyncEvery int           // WAL group-commit factor from WithWALSyncEvery
	walSyncIvl   time.Duration // latency bound from WithWALSyncInterval
	retain       int           // snapshot generations kept, from WithSnapshotRetain

	// gateMu guards the lazily-created write gates below. txnGate admits
	// one explicit transaction at a time (autocommit statements take only
	// one table gate each, so with a single multi-gate holder the lock
	// graph is acyclic — no deadlocks); tableGates serialize writers per
	// table. Gates are context-aware channel semaphores, so a writer
	// blocked behind a long transaction honors its deadline.
	gateMu     sync.Mutex
	txnSem     chan struct{}
	tableGates map[string]chan struct{}
}

// Open creates a new in-memory database. Call SaveTo to checkpoint it to
// disk and make it durable from that point on.
func Open(opts ...Option) *DB {
	var cfg engine.Config
	for _, o := range opts {
		o(&cfg)
	}
	return &DB{eng: engine.New(cfg), walSyncEvery: cfg.WALSyncEvery,
		walSyncIvl: cfg.WALSyncInterval, retain: cfg.SnapshotRetain}
}

// Close stops background workers and syncs and closes the write-ahead
// log, if attached. The DB must not be used afterwards.
func (db *DB) Close() {
	db.mu.Lock()
	if db.wal != nil {
		// Best effort: grouped commits are flushed; a sync failure here
		// cannot be reported, which is why per-commit sync is the default.
		_ = db.wal.Close()
		db.wal = nil
		db.eng.SetCommitHook(nil)
	}
	db.mu.Unlock()
	db.eng.Close()
}

// Result reports the effect of a statement.
type Result struct {
	// RowsAffected counts inserted/updated/deleted rows (or result rows
	// for a SELECT run through Exec).
	RowsAffected int64
}

// Exec runs one SQL statement. When the database is durable, the
// statement's tuple-level changes are appended to the write-ahead log
// before Exec returns. DML is serialized per table (writers to distinct
// tables proceed concurrently); DDL is exclusive. Transaction control
// (BEGIN/COMMIT/ROLLBACK) needs statement-spanning state — use Begin, a
// Session, or ExecScript for that.
func (db *DB) Exec(query string) (Result, error) {
	return db.ExecContext(context.Background(), query)
}

// ExecContext is Exec under a context: cancellation is observed before
// the statement starts and between rows of read-only statements, never
// mid-mutation.
func (db *DB) ExecContext(ctx context.Context, query string) (Result, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return Result{}, err
	}
	switch stmt.(type) {
	case *sql.Begin, *sql.Commit, *sql.Rollback:
		return Result{}, fmt.Errorf("recdb: %s requires transaction state that outlives the statement; use DB.Begin, a Session, or ExecScript", stmtKeyword(stmt))
	}
	return db.execStmt(ctx, stmt, query)
}

// stmtKeyword names a transaction-control statement for error messages.
func stmtKeyword(stmt sql.Statement) string {
	switch stmt.(type) {
	case *sql.Begin:
		return "BEGIN"
	case *sql.Commit:
		return "COMMIT"
	case *sql.Rollback:
		return "ROLLBACK"
	}
	return "statement"
}

// dmlTarget returns the table a DML statement writes. It is only called
// for statements engine.IsDML accepts.
func dmlTarget(stmt sql.Statement) string {
	switch s := stmt.(type) {
	case *sql.Insert:
		return s.Table
	case *sql.Delete:
		return s.Table
	case *sql.Update:
		return s.Table
	}
	return ""
}

// execStmt runs one autocommit statement under the locking scheme: DML
// takes db.mu shared plus its table's write gate, DDL takes db.mu
// exclusively, and read-only statements run lock-free against snapshots.
func (db *DB) execStmt(ctx context.Context, stmt sql.Statement, text string) (Result, error) {
	if engine.IsDML(stmt) {
		db.mu.RLock()
		defer db.mu.RUnlock()
		gate := db.tableGate(dmlTarget(stmt))
		if err := acquireGate(ctx, gate); err != nil {
			return Result{}, err
		}
		defer releaseGate(gate)
	} else if engine.Mutates(stmt) {
		db.mu.Lock()
		defer db.mu.Unlock()
	}
	r, err := db.eng.ExecParsedCtx(ctx, stmt, text)
	return Result{RowsAffected: r.RowsAffected}, err
}

// MustExec runs one SQL statement and panics on error. Intended for
// examples and tests.
func (db *DB) MustExec(query string) Result {
	r, err := db.Exec(query)
	if err != nil {
		//lint:ignore nopanic MustExec's documented contract, mirroring template.Must
		panic(fmt.Sprintf("recdb: %v", err))
	}
	return r
}

// ExecScript runs a semicolon-separated script, stopping at the first
// error. Scripts may open transactions: BEGIN ... COMMIT spans inside
// the script commit atomically, and a script that ends with a
// transaction still open has that transaction rolled back and reports
// an error.
func (db *DB) ExecScript(script string) (Result, error) {
	return db.ExecScriptContext(context.Background(), script)
}

// ExecScriptContext runs a semicolon-separated script, stopping at the
// first error — see ExecScript. Cancellation is observed between
// statements and between rows of read-only statements, never
// mid-mutation: every statement is either fully applied (and logged,
// when durable) or not started, so a timeout cannot tear a half-applied
// write. The script runs through an ephemeral Session, so transaction
// control statements work and an unfinished transaction is rolled back
// on exit.
func (db *DB) ExecScriptContext(ctx context.Context, script string) (Result, error) {
	stmts, err := sql.ParseScript(script)
	if err != nil {
		return Result{}, err
	}
	sess := db.NewSession()
	defer sess.Close()
	var total Result
	for _, s := range stmts {
		r, err := sess.execParsed(ctx, s.Stmt, s.Text)
		if err != nil {
			return total, err
		}
		total.RowsAffected += r.RowsAffected
	}
	if sess.InTransaction() {
		_ = sess.Close()
		return total, fmt.Errorf("recdb: script ended inside an open transaction (rolled back)")
	}
	return total, nil
}

// Query runs a SELECT (optionally with a RECOMMEND clause) and returns its
// materialized result.
func (db *DB) Query(query string) (*Rows, error) {
	return db.QueryContext(context.Background(), query)
}

// QueryContext runs a SELECT under a context: every operator in the plan
// checks cancellation between rows, so a canceled or deadline-expired
// query stops promptly even inside a blocking sort or join build and
// returns an error wrapping ctx.Err(). A context that can never be
// canceled adds no overhead.
func (db *DB) QueryContext(ctx context.Context, query string) (*Rows, error) {
	res, err := db.eng.QueryCtx(ctx, query)
	if err != nil {
		return nil, err
	}
	cols := make([]string, res.Schema.Len())
	for i, c := range res.Schema.Columns {
		cols[i] = c.Name
	}
	strategy := ""
	if res.Explain != nil {
		strategy = res.Explain.Strategy
	}
	return &Rows{cols: cols, rows: res.Rows, pos: -1, strategy: strategy}, nil
}

// Rows is a materialized query result. Iterate with Next, read with Row or
// Scan.
type Rows struct {
	cols     []string
	rows     []types.Row
	pos      int
	strategy string
}

// Columns returns the result column names.
func (r *Rows) Columns() []string { return r.cols }

// Len returns the number of result rows.
func (r *Rows) Len() int { return len(r.rows) }

// Strategy names the recommendation plan the optimizer chose
// ("Recommend", "FilterRecommend", "JoinRecommend", "IndexRecommend"), or
// "" for plain queries. Useful for tests and EXPLAIN-style diagnostics.
func (r *Rows) Strategy() string { return r.strategy }

// Next advances to the next row; it returns false when exhausted.
func (r *Rows) Next() bool {
	if r.pos+1 >= len(r.rows) {
		return false
	}
	r.pos++
	return true
}

// Row returns the current row.
func (r *Rows) Row() Row {
	if r.pos < 0 || r.pos >= len(r.rows) {
		return nil
	}
	return r.rows[r.pos]
}

// All returns every row (independent of iteration state).
func (r *Rows) All() []Row { return r.rows }

// Scan copies the current row into dest pointers: *int64, *float64,
// *string, *bool, or *Value. Numeric values coerce between int64 and
// float64.
func (r *Rows) Scan(dest ...any) error {
	if r.pos < 0 || r.pos >= len(r.rows) {
		return fmt.Errorf("recdb: Scan called without a current row")
	}
	return types.ScanRow(r.rows[r.pos], r.cols, dest...)
}

// ---- Recommendation management ----

// RunCacheMaintenance triggers one pass of the hotness-based caching
// algorithm (Algorithm 4) for a recommender.
func (db *DB) RunCacheMaintenance(recommender string) (CacheDecision, error) {
	dec, err := db.eng.RunCacheMaintenance(recommender)
	return CacheDecision{Admitted: dec.Admitted, Evicted: dec.Evicted}, err
}

// CacheDecision summarizes one cache-maintenance pass.
type CacheDecision struct {
	Admitted int
	Evicted  int
}

// Materialize fully pre-computes the RecScoreIndex for a recommender so
// subsequent top-k queries use the INDEXRECOMMEND path.
func (db *DB) Materialize(recommender string) error {
	return db.eng.Materialize(recommender)
}

// MaterializeUser pre-computes a single user's predictions.
func (db *DB) MaterializeUser(recommender string, user int64) error {
	return db.eng.MaterializeUser(recommender, user)
}

// StartCacheDaemon runs the cache manager asynchronously every interval,
// as in §IV-D. Stop it with StopCacheDaemon or Close.
func (db *DB) StartCacheDaemon(recommender string, interval time.Duration) error {
	r, ok := db.eng.Recommenders().Get(recommender)
	if !ok {
		return fmt.Errorf("recdb: no recommender %q", recommender)
	}
	c, err := db.eng.CacheOf(recommender)
	if err != nil {
		return err
	}
	c.Start(r.Store(), interval)
	return nil
}

// StopCacheDaemon halts a recommender's background cache manager.
func (db *DB) StopCacheDaemon(recommender string) error {
	c, err := db.eng.CacheOf(recommender)
	if err != nil {
		return err
	}
	c.Stop()
	return nil
}

// ModelBuildTime reports how long the recommender's most recent model
// build took (Table II of the paper).
func (db *DB) ModelBuildTime(recommender string) (time.Duration, error) {
	r, ok := db.eng.Recommenders().Get(recommender)
	if !ok {
		return 0, fmt.Errorf("recdb: no recommender %q", recommender)
	}
	return r.BuildTime(), nil
}

// Stats reports cumulative page I/O: logical reads, buffer misses, and
// physical writes.
func (db *DB) Stats() (reads, misses, writes int64) {
	return db.eng.Stats().Snapshot()
}

// ResetStats zeroes the I/O counters.
func (db *DB) ResetStats() { db.eng.Stats().Reset() }

// Engine exposes the underlying engine for advanced integration (the
// bench harness uses it to flip planner ablation switches). Most callers
// never need it.
func (db *DB) Engine() *engine.Engine { return db.eng }

// CacheManagerClock is re-exported for tests that need deterministic cache
// timestamps.
type CacheManagerClock = reccache.Clock

// Algorithms lists the supported recommendation algorithm names: the
// paper's five plus the non-personalized Popularity extension.
func Algorithms() []string {
	return []string{
		rec.ItemCosCF.String(), rec.ItemPearCF.String(),
		rec.UserCosCF.String(), rec.UserPearCF.String(),
		rec.SVD.String(), rec.Popularity.String(),
	}
}

// TableInfo describes one user table.
type TableInfo struct {
	Name  string
	Rows  int64
	Pages uint32
}

// Tables lists the database's tables (including internal model tables,
// whose names start with "_rec_").
func (db *DB) Tables() []TableInfo {
	var out []TableInfo
	for _, name := range db.eng.Catalog().Names() {
		t, err := db.eng.Catalog().Get(name)
		if err != nil {
			continue
		}
		out = append(out, TableInfo{Name: t.Name, Rows: t.Heap.NumRows(), Pages: t.Heap.NumPages()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RecommenderInfo describes one created recommender.
type RecommenderInfo struct {
	Name      string
	Table     string
	Algorithm string
	BuildTime time.Duration
	Rebuilds  int
	Pending   int
}

// RecommenderHealth is a point-in-time view of one recommender's
// maintenance state. A degraded recommender keeps serving its last good
// model; maintenance retries the rebuild with exponential backoff.
type RecommenderHealth struct {
	Name    string
	Healthy bool
	// Rebuilds counts successful maintenance rebuilds; Pending counts
	// ratings inserted since the current model was built.
	Rebuilds int
	Pending  int
	// Failures counts consecutive failed rebuilds (0 when healthy), and
	// LastError is the most recent failure (nil when healthy).
	Failures  int
	LastError error
	// LastErrorAt and NextRetry frame the backoff window.
	LastErrorAt time.Time
	NextRetry   time.Time
}

// Health reports every recommender's maintenance health, sorted by name.
// A recommender whose background rebuild failed stays available — it
// answers from the previous model — and shows up here as unhealthy until
// a retry succeeds.
func (db *DB) Health() []RecommenderHealth {
	hs := db.eng.Recommenders().HealthAll()
	out := make([]RecommenderHealth, len(hs))
	for i, h := range hs {
		out[i] = RecommenderHealth{
			Name: h.Name, Healthy: h.Healthy,
			Rebuilds: h.Rebuilds, Pending: h.Pending,
			Failures: h.Failures, LastError: h.LastError,
			LastErrorAt: h.LastErrorAt, NextRetry: h.NextRetry,
		}
	}
	return out
}

// Recommenders lists the recommenders created with CREATE RECOMMENDER.
func (db *DB) Recommenders() []RecommenderInfo {
	var out []RecommenderInfo
	for _, r := range db.eng.Recommenders().List() {
		out = append(out, RecommenderInfo{
			Name: r.Name, Table: r.Table, Algorithm: r.Algo.String(),
			BuildTime: r.BuildTime(), Rebuilds: r.Rebuilds(), Pending: r.Pending(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
