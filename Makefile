GO ?= go

.PHONY: all build test race cover bench bench-build bench-durability bench-metrics bench-serve bench-concurrency bench-ann bench-sharded bench-paper fault-sweep vet lint fmt examples clean

all: vet lint test build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...
	$(GO) test -race -cpu=1,4 ./internal/ann/... ./internal/metrics/... ./internal/rec/... ./internal/reccache/... ./internal/exec/... ./internal/server/... ./internal/shard/... ./internal/wire/... ./client/...

cover:
	$(GO) test -cover ./...

# testing.B benches for every paper table/figure (scaled datasets).
bench:
	$(GO) test -bench=. -benchmem ./...

# Worker-scaling experiment for the parallel build kernels (short mode:
# scaled-down MovieLens). Writes BENCH_build.json.
bench-build:
	$(GO) run ./cmd/recdb-bench -exp scaling -scale 0.25 -workers 1,2,4 -json BENCH_build.json

# Durability cost on the real filesystem: commit throughput per WAL sync
# policy, checkpoint time, cold recovery. Writes BENCH_durability.json.
bench-durability:
	$(GO) run ./cmd/recdb-bench -exp durability -json BENCH_durability.json

# Observability overhead: the same query with instruments idle vs under
# EXPLAIN ANALYZE, plus the isolated per-query instrumentation cost
# (DESIGN.md §9). Writes BENCH_metrics.json.
bench-metrics:
	$(GO) run ./cmd/recdb-bench -exp metrics -scale 0.25 -json BENCH_metrics.json

# Serving-layer experiment: a real recdb-server on loopback TCP driven
# by real client connections; throughput and p50/p99 latency at 1, 8,
# and 64 connections. Writes BENCH_serve.json.
bench-serve:
	$(GO) run ./cmd/recdb-bench -exp serve -scale 0.25 -conns 1,8,64 -json BENCH_serve.json

# Concurrency sweep for the snapshot-read path: 1, 8, and 64 connections
# under a pure-read and a 90/10 read/write mix (the mixed cells run
# against a durable database, so writes pay their real WAL fsync and the
# sweep shows whether reads stall behind them). Writes
# BENCH_concurrency.json.
bench-concurrency:
	$(GO) run ./cmd/recdb-bench -exp serve -scale 0.25 -conns 1,8,64 -mix 100/0,90/10 -json BENCH_concurrency.json

# IVF vector index frontier: recall@10 vs throughput speedup over the
# exact scan, swept across nprobe and dataset scales. Writes
# BENCH_ann.json.
bench-ann:
	$(GO) run ./cmd/recdb-bench -exp ann -ann-scales 0.25,1.0 -json BENCH_ann.json

# Horizontal-scale experiment: real recdb-server shard processes fronted
# by a real recdb-router on loopback; aggregate point-lookup and
# durable-insert throughput at 1, 2, and 4 shards, plus a router-less
# direct baseline for the routing-overhead check. Writes
# BENCH_sharded.json.
bench-sharded:
	$(GO) run ./cmd/recdb-bench -exp sharded -shard-counts 1,2,4 -json BENCH_sharded.json

# Exhaustive crash simulation: every fault point x every fault mode, and
# every byte of a snapshot flipped (the default test run samples both),
# plus the page-I/O sweep under the file-backed buffer pool.
fault-sweep:
	RECDB_FAULT_SWEEP=1 $(GO) test -run 'TestCrashSweep|TestSnapshotCorruptionSweep|TestHeapCrashSweep' -v . ./internal/storage

# Regenerate the paper's tables at full scale (see EXPERIMENTS.md).
bench-paper:
	$(GO) run ./cmd/recdb-bench -md

vet:
	$(GO) vet ./...

# RecDB's own analyzer suite (pin/unpin balance, operator Close
# propagation, lock discipline, error wrapping, no library panics).
lint:
	$(GO) run ./cmd/recdb-lint ./...

# go fmt works package-wise, so analyzer testdata fixtures (including the
# deliberately unparseable loader fixture) are left alone.
fmt:
	$(GO) fmt ./...

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/movies
	$(GO) run ./examples/poi
	$(GO) run ./examples/caching
	$(GO) run ./examples/analytics

clean:
	$(GO) clean ./...
