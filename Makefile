GO ?= go

.PHONY: all build test race cover bench bench-paper vet fmt examples clean

all: vet test build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# testing.B benches for every paper table/figure (scaled datasets).
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the paper's tables at full scale (see EXPERIMENTS.md).
bench-paper:
	$(GO) run ./cmd/recdb-bench -md

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/movies
	$(GO) run ./examples/poi
	$(GO) run ./examples/caching
	$(GO) run ./examples/analytics

clean:
	$(GO) clean ./...
