GO ?= go

.PHONY: all build test race cover bench bench-paper vet lint fmt examples clean

all: vet lint test build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# testing.B benches for every paper table/figure (scaled datasets).
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the paper's tables at full scale (see EXPERIMENTS.md).
bench-paper:
	$(GO) run ./cmd/recdb-bench -md

vet:
	$(GO) vet ./...

# RecDB's own analyzer suite (pin/unpin balance, operator Close
# propagation, lock discipline, error wrapping, no library panics).
lint:
	$(GO) run ./cmd/recdb-lint ./...

# go fmt works package-wise, so analyzer testdata fixtures (including the
# deliberately unparseable loader fixture) are left alone.
fmt:
	$(GO) fmt ./...

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/movies
	$(GO) run ./examples/poi
	$(GO) run ./examples/caching
	$(GO) run ./examples/analytics

clean:
	$(GO) clean ./...
