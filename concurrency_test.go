package recdb

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentReadersAndWriter exercises the narrowed locking contract:
// read-only statements take no DB-level lock at all — they read through
// the catalog's published generation and page-level snapshots — while
// mutating statements serialize on db.mu. Under -race this covers the
// whole stack: parser, planner, executor, heap snapshots, and the striped
// buffer pool, with writes continuously republishing generations.
func TestConcurrentReadersAndWriter(t *testing.T) {
	db := Open()
	t.Cleanup(db.Close)
	db.MustExec(`CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT)`)
	for i := 0; i < 200; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO ratings VALUES (%d, %d, %g)`, i%20, i, float64(i%5)+0.5))
	}

	const readers = 4
	var wg sync.WaitGroup
	var failed atomic.Bool
	stop := make(chan struct{})

	fail := func(format string, args ...any) {
		if failed.CompareAndSwap(false, true) {
			t.Errorf(format, args...)
		}
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rows, err := db.Query(`SELECT uid, iid, ratingval FROM ratings WHERE uid = 7`)
				if err != nil {
					fail("reader query: %v", err)
					return
				}
				// Each result set is one snapshot: every row must be
				// complete and belong to the predicate.
				for rows.Next() {
					var uid, iid int64
					var rv float64
					if err := rows.Scan(&uid, &iid, &rv); err != nil {
						fail("reader scan: %v", err)
						return
					}
					if uid != 7 {
						fail("predicate violated: uid=%d", uid)
						return
					}
				}
			}
		}()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 300; i++ {
			if _, err := db.Exec(fmt.Sprintf(`INSERT INTO ratings VALUES (7, %d, 2.5)`, 1000+i)); err != nil {
				fail("writer: %v", err)
				return
			}
		}
	}()

	wg.Wait()
}
