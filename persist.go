package recdb

import (
	"recdb/internal/engine"
	"recdb/internal/persist"
)

// SaveTo snapshots the database (user tables, rows, secondary indexes,
// and recommender definitions) to a directory. Derived state — model
// tables and the RecScoreIndex — is not stored; OpenDir rebuilds it.
func (db *DB) SaveTo(dir string) error {
	return persist.Save(db.eng, dir)
}

// OpenDir reconstructs a database from a snapshot directory produced by
// SaveTo. Recommendation models are retrained from their ratings tables
// using the options in effect here (so a snapshot can be reopened with
// different tuning).
func OpenDir(dir string, opts ...Option) (*DB, error) {
	var cfg engine.Config
	for _, o := range opts {
		o(&cfg)
	}
	eng, err := persist.Load(dir, cfg)
	if err != nil {
		return nil, err
	}
	return &DB{eng: eng}, nil
}
