package recdb

import (
	"fmt"
	"path/filepath"

	"recdb/internal/engine"
	"recdb/internal/fault"
	"recdb/internal/metrics"
	"recdb/internal/persist"
	"recdb/internal/types"
	"recdb/internal/wal"
)

// walMetrics wires the engine's registry into a log's append/sync path,
// so WAL appends, fsync latency, and group-commit batch sizes show up in
// DB.Metrics.
func walMetrics(reg *metrics.Registry) wal.Metrics {
	return wal.Metrics{
		Appends:     reg.Counter("wal.appends"),
		AppendBytes: reg.Counter("wal.append_bytes"),
		Syncs:       reg.Counter("wal.syncs"),
		SyncNanos:   reg.Histogram("wal.fsync_ns"),
		BatchSize:   reg.Histogram("wal.batch_size"),
	}
}

// walSubdir is where a durable database keeps its write-ahead log,
// alongside the snapshot generations.
const walSubdir = "wal"

// SaveTo checkpoints the database into dir as a new snapshot generation
// (user tables, rows, secondary indexes, and recommender definitions;
// derived state — model tables and the RecScoreIndex — is rebuilt by
// OpenDir). The snapshot is crash-safe: every file is written to a temp
// name, fsynced, renamed, and the directory fsynced, and the manifest
// carries CRC32-C checksums for itself and every data file.
//
// SaveTo also makes the database durable at dir from this point on:
// subsequent mutating statements are appended to dir/wal and replayed by
// OpenDir, so a crash after SaveTo loses no acknowledged commit (under
// the default per-commit sync policy). Old snapshot generations beyond
// the retention bound and the checkpointed log segments are pruned.
func (db *DB) SaveTo(dir string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.checkpointLocked(dir)
}

func (db *DB) checkpointLocked(dir string) error {
	fs := db.fs
	if fs == nil {
		fs = fault.OS
	}
	var walSeq uint64
	if db.wal != nil {
		walSeq = db.wal.Seq()
	}
	gen, err := persist.SaveRetainFS(fs, db.eng, dir, walSeq, db.retain)
	if err != nil {
		return err
	}
	db.gen = gen
	switch {
	case db.wal != nil && samePath(dir, db.dir):
		// Checkpointed in place: the snapshot owns everything logged so
		// far, so the log restarts empty.
		if err := db.wal.Reset(); err != nil {
			return err
		}
	default:
		// First checkpoint here (or a move): attach a fresh log at dir.
		if db.wal != nil {
			if err := db.wal.Close(); err != nil {
				return err
			}
		}
		l, err := wal.Open(fs, filepath.Join(dir, walSubdir), walSeq,
			wal.Options{SyncEvery: db.walSyncEvery, SyncInterval: db.walSyncIvl,
				Metrics: walMetrics(db.eng.Metrics())})
		if err != nil {
			return err
		}
		db.fs, db.dir, db.wal = fs, dir, l
		db.eng.SetCommitHook(db.logCommitLocked)
	}
	return nil
}

// samePath reports whether two directory paths name the same location,
// tolerating "./", trailing-slash, and relative-vs-absolute spellings of
// one path. Purely lexical: symlinked aliases still compare unequal.
func samePath(a, b string) bool {
	if a == b {
		return true
	}
	aa, errA := filepath.Abs(a)
	bb, errB := filepath.Abs(b)
	return errA == nil && errB == nil && aa == bb
}

// logCommitLocked is the engine commit hook: it encodes a commit's logical
// mutations as tuple-level WAL records and appends them in one atomic
// group. A single bare mutation becomes one record; a group (an explicit
// transaction's write set, or a multi-row statement) is framed
// TxnBegin..TxnCommit and written with AppendBatch, whose single
// contiguous write guarantees a crash can only ever tear the suffix —
// losing the commit record and making recovery discard the whole
// transaction rather than replay part of it.
//
// The hook only runs from commit paths that hold db.mu (shared for DML
// plus the table's write gate, exclusive for DDL), so same-table append
// order always matches apply order, and db.wal cannot be detached
// concurrently. Its error fails the commit, telling the caller the
// change is applied in memory but not durable.
func (db *DB) logCommitLocked(txn uint64, muts []engine.Mutation) error {
	payloads := make([][]byte, 0, len(muts)+2)
	if txn != 0 {
		payloads = append(payloads, wal.EncodeRecord(nil, wal.Record{Kind: wal.RecTxnBegin, Txn: txn}))
	}
	for _, m := range muts {
		// engine.Mut* kinds are defined as the matching wal.Rec* bytes.
		rec := wal.Record{Kind: m.Kind, Txn: txn, Table: m.Table, Text: m.Text}
		if m.Row != nil {
			rec.Row = types.EncodeRow(nil, m.Row)
		}
		if m.Old != nil {
			rec.Old = types.EncodeRow(nil, m.Old)
		}
		payloads = append(payloads, wal.EncodeRecord(nil, rec))
	}
	if txn != 0 {
		payloads = append(payloads, wal.EncodeRecord(nil, wal.Record{Kind: wal.RecTxnCommit, Txn: txn}))
	}
	var err error
	if len(payloads) == 1 {
		_, err = db.wal.Append(payloads[0])
	} else {
		_, err = db.wal.AppendBatch(payloads)
	}
	if err != nil {
		return fmt.Errorf("recdb: commit applied but not logged: %w", err)
	}
	return nil
}

// replayRecord applies one logical WAL record to the recovering engine.
// Tuple records go straight to the heap (maintaining primary and
// secondary indexes and recommender counters); statement records (DDL)
// re-execute their SQL text.
func replayRecord(eng *engine.Engine, rec wal.Record) error {
	decode := func(buf []byte) (types.Row, error) {
		if buf == nil {
			return nil, nil
		}
		row, _, err := types.DecodeRow(buf)
		return row, err
	}
	switch rec.Kind {
	case wal.RecInsert:
		row, err := decode(rec.Row)
		if err != nil {
			return err
		}
		return eng.ApplyInsert(rec.Table, row)
	case wal.RecDelete:
		old, err := decode(rec.Old)
		if err != nil {
			return err
		}
		return eng.ApplyDelete(rec.Table, old)
	case wal.RecUpdate:
		old, err := decode(rec.Old)
		if err != nil {
			return err
		}
		row, err := decode(rec.Row)
		if err != nil {
			return err
		}
		return eng.ApplyUpdate(rec.Table, old, row)
	case wal.RecStmt:
		_, err := eng.Exec(rec.Text)
		return err
	}
	return fmt.Errorf("unexpected record kind %q", rec.Kind)
}

// OpenDir recovers a database from a directory produced by SaveTo: it
// loads the newest snapshot generation whose checksums verify (falling
// back to an older generation if the newest is corrupt), replays the
// write-ahead log past the snapshot's high-water mark — truncating a
// torn tail from a crash mid-commit — and reattaches the log so the
// database continues durably. Recommendation models are retrained from
// their ratings tables using the options in effect here (so a snapshot
// can be reopened with different tuning).
func OpenDir(dir string, opts ...Option) (*DB, error) {
	var cfg engine.Config
	for _, o := range opts {
		o(&cfg)
	}
	return openDirFS(fault.OS, dir, cfg)
}

func openDirFS(fs fault.FS, dir string, cfg engine.Config) (*DB, error) {
	eng, info, err := persist.LoadFS(fs, dir, cfg)
	if err != nil {
		return nil, err
	}
	// Collect the log's surviving records first. They are applied only if
	// they contiguously extend the loaded snapshot: when Load fell back
	// past a corrupt newer generation, the log continues that newer
	// timeline (its first sequence is past the older snapshot's high-water
	// mark) and replaying it would interleave histories — the safe
	// recovery is the older checkpoint alone.
	walDir := filepath.Join(dir, walSubdir)
	type record struct {
		seq     uint64
		version int
		payload []byte
	}
	var records []record
	last, err := wal.Replay(fs, walDir, info.WALSeq, func(seq uint64, version int, payload []byte) error {
		records = append(records, record{seq, version, append([]byte(nil), payload...)})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("recdb: recovering %s: %w", dir, err)
	}
	if len(records) > 0 && records[0].seq != info.WALSeq+1 {
		records, last = nil, info.WALSeq
	}
	// Replay before installing the commit hook, so replayed changes are
	// not re-logged. Version-1 segments carry legacy statement text and
	// are re-executed through the SQL front end; version-2 segments carry
	// logical tuple records applied directly to the heap — no re-parse,
	// no re-plan. Records tagged with a transaction id are buffered and
	// applied only when their TxnCommit record arrives: a transaction
	// whose commit record is missing (crash mid-commit tore the group's
	// suffix) or that aborted is discarded whole, never half-replayed.
	pending := make(map[uint64][]wal.Record)
	for _, r := range records {
		if r.version == 1 {
			if _, err := eng.Exec(string(r.payload)); err != nil {
				return nil, fmt.Errorf("recdb: recovering %s: replaying statement %d: %w", dir, r.seq, err)
			}
			continue
		}
		rec, err := wal.DecodeRecord(r.payload)
		if err != nil {
			return nil, fmt.Errorf("recdb: recovering %s: record %d: %w", dir, r.seq, err)
		}
		switch rec.Kind {
		case wal.RecTxnBegin:
			pending[rec.Txn] = nil
		case wal.RecTxnCommit:
			for _, m := range pending[rec.Txn] {
				if err := replayRecord(eng, m); err != nil {
					return nil, fmt.Errorf("recdb: recovering %s: transaction %d: %w", dir, rec.Txn, err)
				}
			}
			delete(pending, rec.Txn)
		case wal.RecTxnAbort:
			delete(pending, rec.Txn)
		default:
			if rec.Txn != 0 {
				pending[rec.Txn] = append(pending[rec.Txn], rec)
				continue
			}
			if err := replayRecord(eng, rec); err != nil {
				return nil, fmt.Errorf("recdb: recovering %s: record %d: %w", dir, r.seq, err)
			}
		}
	}
	// Anything still pending lacks a commit record: the transaction was
	// open (or its group append was torn) at the crash. Atomicity says it
	// never happened.
	l, err := wal.Open(fs, walDir, last,
		wal.Options{SyncEvery: cfg.WALSyncEvery, SyncInterval: cfg.WALSyncInterval,
			Metrics: walMetrics(eng.Metrics())})
	if err != nil {
		return nil, err
	}
	db := &DB{eng: eng, fs: fs, dir: dir, wal: l, gen: info.Gen,
		walSyncEvery: cfg.WALSyncEvery, walSyncIvl: cfg.WALSyncInterval,
		skipped: len(info.Skipped), retain: cfg.SnapshotRetain}
	eng.SetCommitHook(db.logCommitLocked)
	// Checkpoint the recovered state into a fresh generation and reset
	// the log. This clears replayed segments — including a torn tail left
	// by a crash mid-commit, which later replays would otherwise trip
	// over mid-log — and bounds the next recovery's replay work.
	if len(records) > 0 || len(info.Skipped) > 0 {
		if err := db.checkpointLocked(dir); err != nil {
			return nil, fmt.Errorf("recdb: post-recovery checkpoint: %w", err)
		}
	} else if err := l.Reset(); err != nil {
		// No records survived, so the snapshot already owns everything;
		// clearing the old segments drops any torn tail a crash left
		// behind (a later replay would trip over it mid-log).
		return nil, fmt.Errorf("recdb: clearing recovered log: %w", err)
	}
	return db, nil
}

// DurabilityInfo describes the database's durability state.
type DurabilityInfo struct {
	// Dir is the durable home ("" while purely in-memory).
	Dir string
	// Attached reports whether a write-ahead log is receiving commits.
	Attached bool
	// Generation is the snapshot generation last written or recovered.
	Generation uint64
	// WALSeq is the last logged statement's sequence number.
	WALSeq uint64
	// SkippedGenerations counts corrupt generations OpenDir had to skip.
	SkippedGenerations int
}

// Durability reports where (and whether) the database persists.
func (db *DB) Durability() DurabilityInfo {
	db.mu.RLock()
	defer db.mu.RUnlock()
	info := DurabilityInfo{Dir: db.dir, Generation: db.gen, SkippedGenerations: db.skipped}
	if db.wal != nil {
		info.Attached = true
		info.WALSeq = db.wal.Seq()
	}
	return info
}

// SyncWAL forces grouped, not-yet-synced commits to stable storage
// (meaningful with WithWALSyncEvery(n > 1)).
func (db *DB) SyncWAL() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.wal == nil {
		return fmt.Errorf("recdb: no write-ahead log attached; call SaveTo or OpenDir first")
	}
	return db.wal.Sync()
}
