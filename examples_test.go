package recdb

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestExamplesRun executes every example binary end to end and checks for
// the landmarks each one prints. Skipped under -short (each `go run`
// compiles a binary).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are slow under -short")
	}
	cases := []struct {
		dir   string
		wants []string
	}{
		{"quickstart", []string{"GeneralRec model built", "Recommendations for Alice", "plan: JoinRecommend"}},
		{"movies", []string{"plan: FilterRecommend", "plan: JoinRecommend", "plan: IndexRecommend", "overlap on"}},
		{"poi", []string{"Query 6", "Query 7", "Query 8", "SpatialIndexScan"}},
		{"caching", []string{"plan: IndexRecommend", "cache maintenance", "index invalidated", "stopped cleanly"}},
		{"analytics", []string{"Average rating", "USING Popularity", "strategy: FilterRecommend", "strategy: IndexRecommend"}},
	}
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./"+filepath.Join("examples", c.dir))
			cmd.Dir = root
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", c.dir, err, out)
			}
			for _, want := range c.wants {
				if !strings.Contains(string(out), want) {
					t.Errorf("example %s output missing %q:\n%s", c.dir, want, out)
				}
			}
		})
	}
}
