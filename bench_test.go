// Benchmarks regenerating every table and figure of the paper's evaluation
// (§VI). Each paper artifact has one Benchmark* family; sub-benchmarks
// carry the parameters (dataset, algorithm, selectivity, k, system).
//
// These run on scaled-down datasets (default 0.25×) so `go test -bench=.`
// stays affordable; cmd/recdb-bench runs the same experiments at full
// scale and prints paper-style tables. Set RECDB_BENCH_SCALE to override.
package recdb

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"recdb/internal/bench"
	"recdb/internal/dataset"
)

func benchScale() float64 {
	if s := os.Getenv("RECDB_BENCH_SCALE"); s != "" {
		if f, err := strconv.ParseFloat(s, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.25
}

// envCache shares prepared environments across sub-benchmarks.
var envCache sync.Map

func benchEnv(b *testing.B, spec dataset.Spec, algos []string, neighborhood int) *bench.Env {
	b.Helper()
	key := fmt.Sprintf("%s|%v|%d", spec.Name, algos, neighborhood)
	if v, ok := envCache.Load(key); ok {
		return v.(*bench.Env)
	}
	env, err := bench.Setup(spec, algos, neighborhood)
	if err != nil {
		b.Fatal(err)
	}
	envCache.Store(key, env)
	return env
}

func scaled(spec dataset.Spec) dataset.Spec { return spec.Scaled(benchScale()) }

// ---- Table II: model build time ----

func BenchmarkTable2_ModelBuild(b *testing.B) {
	for _, spec := range []dataset.Spec{
		scaled(dataset.MovieLens), scaled(dataset.LDOS), scaled(dataset.Yelp),
	} {
		for _, algo := range bench.Algos {
			b.Run(spec.Name+"/"+algo, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := bench.Setup(spec, []string{algo}, 0); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---- Figs. 6 and 7: query time vs selectivity ----

func benchSelectivity(b *testing.B, spec dataset.Spec) {
	env := benchEnv(b, spec, []string{"ItemCosCF", "SVD"}, 0)
	for _, algo := range []string{"ItemCosCF", "SVD"} {
		for _, sel := range bench.Selectivities {
			items := env.SelectivityItems(sel)
			b.Run(fmt.Sprintf("%s/sel=%.1f%%/RecDB", algo, sel*100), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := env.RecDBSelectivity(algo, items); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("%s/sel=%.1f%%/OnTopDB", algo, sel*100), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := env.OnTopSelectivity(algo, items); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkFig6_Selectivity_MovieLens(b *testing.B) {
	benchSelectivity(b, scaled(dataset.MovieLens))
}

func BenchmarkFig7_Selectivity_Yelp(b *testing.B) {
	benchSelectivity(b, scaled(dataset.Yelp))
}

// ---- Figs. 8 and 9: join query time ----

func benchJoin(b *testing.B, spec dataset.Spec) {
	env := benchEnv(b, spec, bench.Algos, 0)
	for _, twoWay := range []bool{false, true} {
		label := "one-way"
		if twoWay {
			label = "two-way"
		}
		for _, algo := range bench.Algos {
			b.Run(fmt.Sprintf("%s/%s/RecDB", label, algo), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := env.RecDBJoin(algo, twoWay); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("%s/%s/OnTopDB", label, algo), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := env.OnTopJoin(algo, twoWay); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkFig8_Join_MovieLens(b *testing.B) { benchJoin(b, scaled(dataset.MovieLens)) }

func BenchmarkFig9_Join_LDOS(b *testing.B) { benchJoin(b, dataset.LDOS) }

// ---- Figs. 10, 11, 12: top-k with pre-computation ----

func benchTopK(b *testing.B, spec dataset.Spec) {
	env := benchEnv(b, spec, bench.Algos, 0)
	if err := env.MaterializeQueryUser(bench.Algos); err != nil {
		b.Fatal(err)
	}
	for _, k := range bench.TopKs {
		for _, algo := range bench.Algos {
			b.Run(fmt.Sprintf("k=%d/%s/RecDB", k, algo), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := env.RecDBTopK(algo, k); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("k=%d/%s/OnTopDB", k, algo), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := env.OnTopTopK(algo, k); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkFig10_TopK_MovieLens(b *testing.B) { benchTopK(b, scaled(dataset.MovieLens)) }

func BenchmarkFig11_TopK_LDOS(b *testing.B) { benchTopK(b, dataset.LDOS) }

func BenchmarkFig12_TopK_Yelp(b *testing.B) { benchTopK(b, scaled(dataset.Yelp)) }

// ---- Ablations (DESIGN.md §4) ----

func BenchmarkAblation_FilterPushdown(b *testing.B) {
	env := benchEnv(b, scaled(dataset.MovieLens), []string{"ItemCosCF"}, 0)
	items := env.SelectivityItems(0.001)
	for _, on := range []bool{true, false} {
		label := "on"
		if !on {
			label = "off"
		}
		b.Run("pushdown="+label, func(b *testing.B) {
			env.Eng.Planner().DisableFilterPushdown = !on
			defer func() { env.Eng.Planner().DisableFilterPushdown = false }()
			for i := 0; i < b.N; i++ {
				if _, err := env.RecDBSelectivity("ItemCosCF", items); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblation_JoinRecommend(b *testing.B) {
	env := benchEnv(b, scaled(dataset.MovieLens), []string{"ItemCosCF"}, 0)
	for _, on := range []bool{true, false} {
		label := "on"
		if !on {
			label = "off"
		}
		b.Run("joinrecommend="+label, func(b *testing.B) {
			env.Eng.Planner().DisableJoinRecommend = !on
			defer func() { env.Eng.Planner().DisableJoinRecommend = false }()
			for i := 0; i < b.N; i++ {
				if _, err := env.RecDBJoin("ItemCosCF", false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblation_RecScoreIndex(b *testing.B) {
	env := benchEnv(b, scaled(dataset.MovieLens), []string{"ItemCosCF"}, 0)
	if err := env.MaterializeQueryUser([]string{"ItemCosCF"}); err != nil {
		b.Fatal(err)
	}
	for _, on := range []bool{true, false} {
		label := "on"
		if !on {
			label = "off"
		}
		b.Run("recscoreindex="+label, func(b *testing.B) {
			env.Eng.Planner().DisableIndexRecommend = !on
			defer func() { env.Eng.Planner().DisableIndexRecommend = false }()
			for i := 0; i < b.N; i++ {
				if _, _, err := env.RecDBTopK("ItemCosCF", 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblation_NeighborhoodSize(b *testing.B) {
	spec := scaled(dataset.MovieLens)
	for _, size := range []int{0, 200, 64, 16} {
		label := fmt.Sprintf("size=%d", size)
		if size == 0 {
			label = "size=full"
		}
		env := benchEnv(b, spec, []string{"ItemCosCF"}, size)
		b.Run(label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := env.RecDBTopK("ItemCosCF", 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblation_HotnessThreshold(b *testing.B) {
	spec := scaled(dataset.MovieLens)
	for _, threshold := range []float64{0, 0.5, 1.01} {
		env, err := bench.Setup(spec, []string{"ItemCosCF"}, 0)
		if err != nil {
			b.Fatal(err)
		}
		cache, err := env.Eng.CacheOf("Rec_ItemCosCF")
		if err != nil {
			b.Fatal(err)
		}
		cache.Threshold = threshold
		r, _ := env.Eng.Recommenders().Get("Rec_ItemCosCF")
		for i := 0; i < 10; i++ {
			cache.RecordQuery(env.QueryUser)
		}
		for _, it := range env.Data.Items {
			cache.RecordUpdate(it.ID)
		}
		if _, err := cache.Run(r.Store()); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("threshold=%.2f", threshold), func(b *testing.B) {
			b.ReportMetric(float64(cache.Index().Len()), "materialized_entries")
			for i := 0; i < b.N; i++ {
				if _, _, err := env.RecDBTopK("ItemCosCF", 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
