package recdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"testing"

	"recdb/internal/engine"
	"recdb/internal/fault"
	"recdb/internal/persist"
	"recdb/internal/wal"
)

// The crash-sweep workload: seed a database with a primary-keyed table,
// ratings, and a recommender; checkpoint; commit through the WAL;
// checkpoint again; commit more. Faults are injected at every mutating
// I/O operation along the way.
const crashSeedRatings = 5

const crashSeedScript = `
	CREATE TABLE users (uid INT PRIMARY KEY, name TEXT);
	CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT);
	INSERT INTO users VALUES (1, 'a'), (2, 'b'), (3, 'c');
	INSERT INTO ratings VALUES (1, 1, 4.5), (1, 2, 3.0), (2, 1, 5.0), (2, 3, 2.5), (3, 2, 4.0);
	CREATE RECOMMENDER CrashRec ON ratings
		USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF;
`

// crashProgress records how far the workload got before the fault.
type crashProgress struct {
	saved        bool // the first checkpoint was acknowledged
	acked        int  // ratings inserts acknowledged since then
	txnCommitted bool // the uid-9 two-row transaction's Commit returned
}

// runCrashWorkload drives the workload over fs, stopping at the first
// error, and reports what was acknowledged.
func runCrashWorkload(fs fault.FS) (crashProgress, error) {
	var p crashProgress
	db := Open()
	db.fs = fs
	defer db.Close()
	if _, err := db.ExecScript(crashSeedScript); err != nil {
		return p, err
	}
	if err := db.SaveTo("db"); err != nil {
		return p, err
	}
	p.saved = true
	ack := func(stmt string) error {
		if _, err := db.Exec(stmt); err != nil {
			return err
		}
		p.acked++
		return nil
	}
	if err := ack("INSERT INTO ratings VALUES (7, 1, 3.5)"); err != nil {
		return p, err
	}
	if err := ack("INSERT INTO ratings VALUES (7, 2, 4.0)"); err != nil {
		return p, err
	}
	if err := db.SaveTo("db"); err != nil {
		return p, err
	}
	if err := ack("INSERT INTO ratings VALUES (8, 1, 2.0)"); err != nil {
		return p, err
	}
	// An explicit transaction: two inserts that must reach the log as one
	// atomic group, so recovery sees both or neither — never one.
	tx, err := db.Begin()
	if err != nil {
		return p, err
	}
	if _, err := tx.Exec("INSERT INTO ratings VALUES (9, 1, 1.0)"); err != nil {
		_ = tx.Rollback()
		return p, err
	}
	if _, err := tx.Exec("INSERT INTO ratings VALUES (9, 2, 2.0)"); err != nil {
		_ = tx.Rollback()
		return p, err
	}
	if err := tx.Commit(); err != nil {
		return p, err
	}
	p.txnCommitted = true
	p.acked += 2
	// A rolled-back transaction: its writes never touch the log, so no
	// recovery at any fault point may surface them.
	tx, err = db.Begin()
	if err != nil {
		return p, err
	}
	if _, err := tx.Exec("INSERT INTO ratings VALUES (10, 1, 1.0)"); err != nil {
		_ = tx.Rollback()
		return p, err
	}
	if err := tx.Rollback(); err != nil {
		return p, err
	}
	// One more autocommit write so fault points land after the commit too.
	if err := ack("INSERT INTO ratings VALUES (8, 2, 1.5)"); err != nil {
		return p, err
	}
	return p, nil
}

// verifyRecovery reopens the database after the crash and asserts the
// durability invariants for the given fault mode.
func verifyRecovery(t *testing.T, fs fault.FS, p crashProgress, mode fault.Mode, tag string) {
	t.Helper()
	db, err := openDirFS(fs, "db", engine.Config{})
	if err != nil {
		// Failing to recover is allowed in exactly two situations: the
		// first checkpoint was never acknowledged (nothing durable was
		// promised — the error just has to be a clean one, which reaching
		// this line without a panic demonstrates), or silent corruption
		// (flip mode) destroyed the only generation — in which case the
		// checksums must have produced a typed error, not garbage.
		if !p.saved {
			return
		}
		var pce *persist.CorruptError
		var wce *wal.CorruptError
		if mode == fault.ModeFlip && (errors.As(err, &pce) || errors.As(err, &wce) || errors.Is(err, persist.ErrNoSnapshot)) {
			return
		}
		t.Fatalf("%s: recovery failed: %v (progress %+v)", tag, err, p)
	}
	defer db.Close()

	rows, err := db.Query("SELECT COUNT(*) FROM ratings")
	if err != nil {
		t.Fatalf("%s: counting ratings: %v", tag, err)
	}
	rows.Next()
	var n int64
	if err := rows.Scan(&n); err != nil {
		t.Fatalf("%s: %v", tag, err)
	}
	want := int64(crashSeedRatings + p.acked)
	if mode == fault.ModeFlip {
		// Silent corruption may cost the newest generation or a WAL
		// suffix: any consistent prefix of the acknowledged history is
		// acceptable, a superset or invented state is not.
		if n < crashSeedRatings || n > want {
			t.Fatalf("%s: ratings = %d, want within [%d, %d]", tag, n, crashSeedRatings, want)
		}
	} else if n != want {
		t.Fatalf("%s: ratings = %d, want %d (progress %+v)", tag, n, want, p)
	}

	// Transaction atomicity: the uid-9 transaction recovered whole or not
	// at all, and if its Commit was acknowledged (and the fault mode is
	// not silent corruption, which may cost an acknowledged suffix), it
	// recovered whole.
	countUID := func(uid int) int64 {
		rows, err := db.Query(fmt.Sprintf("SELECT COUNT(*) FROM ratings WHERE uid = %d", uid))
		if err != nil || !rows.Next() {
			t.Fatalf("%s: counting uid %d: %v", tag, uid, err)
		}
		var c int64
		if err := rows.Scan(&c); err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		return c
	}
	n9 := countUID(9)
	if n9 != 0 && n9 != 2 {
		t.Fatalf("%s: partial transaction recovered: %d of 2 rows (progress %+v)", tag, n9, p)
	}
	if mode != fault.ModeFlip {
		if p.txnCommitted && n9 != 2 {
			t.Fatalf("%s: acknowledged transaction lost (progress %+v)", tag, p)
		}
		if !p.txnCommitted && n9 != 0 {
			t.Fatalf("%s: unacknowledged transaction recovered (progress %+v)", tag, p)
		}
	}
	// The rolled-back transaction must never surface.
	if n10 := countUID(10); n10 != 0 {
		t.Fatalf("%s: rolled-back transaction recovered %d rows", tag, n10)
	}

	// Primary-key uniqueness survived recovery.
	if _, err := db.Exec("INSERT INTO users VALUES (1, 'dup')"); err == nil {
		t.Fatalf("%s: primary key not enforced after recovery", tag)
	}
	// The recommender definition survived and its model was rebuilt.
	recs := db.Recommenders()
	if len(recs) != 1 || recs[0].Name != "CrashRec" {
		t.Fatalf("%s: recommenders after recovery = %+v", tag, recs)
	}
	rec, err := db.Query(`SELECT R.iid FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
		WHERE R.uid = 1`)
	if err != nil || rec.Len() == 0 {
		t.Fatalf("%s: recommendation after recovery: %v, %v", tag, err, rec)
	}
}

// TestCrashSweep crashes the workload at every injected fault point, in
// every fault mode, reopens the database, and asserts the invariants.
// The default run samples the fault points; RECDB_FAULT_SWEEP=1 (CI's
// scheduled job) sweeps them all.
func TestCrashSweep(t *testing.T) {
	// Count the workload's mutating I/O operations with a clean run.
	clean := fault.NewInject(fault.NewMemFS())
	if _, err := runCrashWorkload(clean); err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	total := clean.Ops()
	if total < 30 {
		t.Fatalf("suspiciously few fault points: %d", total)
	}

	full := os.Getenv("RECDB_FAULT_SWEEP") == "1"
	stride := int64(1)
	if !full && total > 40 {
		stride = total/40 + 1
	}
	t.Logf("sweeping %d fault points (stride %d, full=%v)", total, stride, full)

	modes := []struct {
		mode fault.Mode
		name string
	}{
		{fault.ModeFail, "fail"},
		{fault.ModeTorn, "torn"},
		{fault.ModePowerCut, "powercut"},
		{fault.ModeFlip, "flip"},
	}
	for _, m := range modes {
		for n := int64(1); n <= total; n++ {
			if stride > 1 && n%stride != 1 && n != total {
				continue
			}
			tag := fmt.Sprintf("%s@%d", m.name, n)
			mem := fault.NewMemFS()
			inj := fault.NewInject(mem)
			inj.SetPlan(m.mode, n)
			p, err := runCrashWorkload(inj)
			if m.mode != fault.ModeFlip && !inj.Tripped() {
				t.Fatalf("%s: plan did not trip (err %v)", tag, err)
			}
			// Power-cut at the worst moment: discard everything unsynced.
			inj.Crash()
			mem.Restart()
			verifyRecovery(t, mem, p, m.mode, tag)
		}
	}
}

// runTxnAtomicityWorkload is TestTxnCrashSweep's focused workload: seed a
// keyed table, checkpoint, then commit one transaction touching three
// rows (insert, update, delete). Every mutating I/O after the checkpoint
// belongs to the transaction's commit, so a fault sweep lands on every
// byte of the atomic group append.
func runTxnAtomicityWorkload(fs fault.FS) (saved, committed bool, err error) {
	db := Open()
	db.fs = fs
	defer db.Close()
	if _, err := db.ExecScript(`
		CREATE TABLE kv (k INT PRIMARY KEY, v INT);
		INSERT INTO kv VALUES (1, 0), (2, 0), (3, 0);
	`); err != nil {
		return false, false, err
	}
	if err := db.SaveTo("db"); err != nil {
		return false, false, err
	}
	saved = true
	tx, err := db.Begin()
	if err != nil {
		return saved, false, err
	}
	for _, stmt := range []string{
		"INSERT INTO kv VALUES (4, 4)",
		"UPDATE kv SET v = 10 WHERE k = 1",
		"DELETE FROM kv WHERE k = 2",
	} {
		if _, err := tx.Exec(stmt); err != nil {
			_ = tx.Rollback()
			return saved, false, err
		}
	}
	if err := tx.Commit(); err != nil {
		return saved, false, err
	}
	return saved, true, nil
}

// TestTxnCrashSweep crashes a three-statement transaction's commit at
// every fault point in every mode and asserts recovery lands on exactly
// the pre-transaction or post-transaction state — never a mixture.
func TestTxnCrashSweep(t *testing.T) {
	clean := fault.NewInject(fault.NewMemFS())
	if _, _, err := runTxnAtomicityWorkload(clean); err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	total := clean.Ops()

	preState := "1:0 2:0 3:0"
	postState := "1:10 3:0 4:4"
	modes := []struct {
		mode fault.Mode
		name string
	}{
		{fault.ModeFail, "fail"},
		{fault.ModeTorn, "torn"},
		{fault.ModePowerCut, "powercut"},
		{fault.ModeFlip, "flip"},
	}
	for _, m := range modes {
		for n := int64(1); n <= total; n++ {
			tag := fmt.Sprintf("%s@%d", m.name, n)
			mem := fault.NewMemFS()
			inj := fault.NewInject(mem)
			inj.SetPlan(m.mode, n)
			saved, committed, _ := runTxnAtomicityWorkload(inj)
			inj.Crash()
			mem.Restart()

			db, err := openDirFS(mem, "db", engine.Config{})
			if err != nil {
				if !saved {
					continue
				}
				var pce *persist.CorruptError
				var wce *wal.CorruptError
				if m.mode == fault.ModeFlip && (errors.As(err, &pce) || errors.As(err, &wce) || errors.Is(err, persist.ErrNoSnapshot)) {
					continue
				}
				t.Fatalf("%s: recovery failed: %v", tag, err)
			}
			rows, err := db.Query("SELECT k, v FROM kv ORDER BY k")
			if err != nil {
				t.Fatalf("%s: %v", tag, err)
			}
			state := ""
			for rows.Next() {
				var k, v int64
				if err := rows.Scan(&k, &v); err != nil {
					t.Fatalf("%s: %v", tag, err)
				}
				if state != "" {
					state += " "
				}
				state += fmt.Sprintf("%d:%d", k, v)
			}
			db.Close()
			if state != preState && state != postState {
				t.Fatalf("%s: recovered a partial transaction: %q (want %q or %q)", tag, state, preState, postState)
			}
			if m.mode != fault.ModeFlip {
				if committed && state != postState {
					t.Fatalf("%s: acknowledged transaction lost: %q", tag, state)
				}
				if !committed && saved && state != preState {
					t.Fatalf("%s: unacknowledged transaction visible: %q", tag, state)
				}
			}
		}
	}
	t.Logf("swept %d fault points x %d modes", total, len(modes))
}

// TestWALv1MigrationReplay proves the upgrade path from the version-1
// statement-text log format: a snapshot whose WAL tail is a hand-built
// v1 segment must replay through the SQL front end, then be rewritten —
// the post-recovery checkpoint leaves a version-2 log behind, and the
// sequence numbering continues where the v1 log stopped.
func TestWALv1MigrationReplay(t *testing.T) {
	fs := fault.NewMemFS()
	db := Open()
	db.fs = fs
	db.MustExec("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
	if err := db.SaveTo("db"); err != nil {
		t.Fatal(err)
	}
	db.Close()

	// Swap the (empty, v2) log the checkpoint attached for a v1 segment
	// holding two statement-text records, framed exactly as the previous
	// format wrote them.
	const walDir = "db/wal"
	names, err := fs.ReadDir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if err := fs.Remove(walDir + "/" + name); err != nil {
			t.Fatal(err)
		}
	}
	buf := []byte("RDBW1\n")
	castagnoli := crc32.MakeTable(crc32.Castagnoli)
	for i, stmt := range []string{
		"INSERT INTO kv VALUES (1, 10)",
		"INSERT INTO kv VALUES (2, 20)",
	} {
		rec := make([]byte, 16+len(stmt))
		binary.LittleEndian.PutUint32(rec[0:4], uint32(len(stmt)))
		binary.LittleEndian.PutUint64(rec[8:16], uint64(i+1))
		copy(rec[16:], stmt)
		binary.LittleEndian.PutUint32(rec[4:8], crc32.Checksum(rec[8:], castagnoli))
		buf = append(buf, rec...)
	}
	f, err := fs.Create(walDir + "/wal-0000000000000001.log")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(buf); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(walDir); err != nil {
		t.Fatal(err)
	}

	db2, err := openDirFS(fs, "db", engine.Config{})
	if err != nil {
		t.Fatalf("recovering from a v1 log: %v", err)
	}
	rows, err := db2.Query("SELECT COUNT(*) FROM kv")
	if err != nil || !rows.Next() {
		t.Fatalf("reading recovered table: %v", err)
	}
	var n int64
	if err := rows.Scan(&n); err != nil || n != 2 {
		t.Fatalf("recovered rows = %d, %v (want 2)", n, err)
	}
	// The statements replayed, so the post-recovery checkpoint rewrote
	// the log: the surviving segment must be version 2, and the sequence
	// must continue past the v1 records.
	names, err = fs.ReadDir(walDir)
	if err != nil || len(names) != 1 {
		t.Fatalf("segments after migration: %v, %v", names, err)
	}
	seg, err := fs.ReadFile(walDir + "/" + names[0])
	if err != nil {
		t.Fatal(err)
	}
	if string(seg[:6]) != "RDBW2\n" {
		t.Fatalf("post-migration segment magic = %q, want RDBW2", seg[:6])
	}
	db2.MustExec("INSERT INTO kv VALUES (3, 30)")
	if got := db2.Durability().WALSeq; got != 3 {
		t.Fatalf("WALSeq after migration commit = %d, want 3", got)
	}
	db2.Close()

	db3, err := openDirFS(fs, "db", engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	rows, err = db3.Query("SELECT COUNT(*) FROM kv")
	if err != nil || !rows.Next() {
		t.Fatal(err)
	}
	if err := rows.Scan(&n); err != nil || n != 3 {
		t.Fatalf("rows after second recovery = %d, %v (want 3)", n, err)
	}
}

// TestSnapshotCorruptionSweep flips bytes across every file of a saved
// snapshot and asserts Load always returns a clean typed error — never a
// panic, never silent acceptance. RECDB_FAULT_SWEEP=1 flips every byte;
// the default run samples.
func TestSnapshotCorruptionSweep(t *testing.T) {
	fs := fault.NewMemFS()
	db := Open()
	db.fs = fs
	if _, err := db.ExecScript(crashSeedScript); err != nil {
		t.Fatal(err)
	}
	if err := db.SaveTo("db"); err != nil {
		t.Fatal(err)
	}
	db.Close()

	// The single generation's files: corrupting any byte of any of them
	// must fail the load (there is no older generation to fall back to).
	genDir := "db/gen-000001"
	names, err := fs.ReadDir(genDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 3 { // manifest + at least two tables
		t.Fatalf("generation files: %v", names)
	}
	stride := int64(17)
	if os.Getenv("RECDB_FAULT_SWEEP") == "1" {
		stride = 1
	}
	flips := 0
	for _, name := range names {
		path := genDir + "/" + name
		size, err := fs.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		for off := int64(0); off < size; off += stride {
			mask := byte(1) << uint(off%8)
			if err := fs.Corrupt(path, off, mask); err != nil {
				t.Fatal(err)
			}
			_, _, lerr := persist.LoadFS(fs, "db", engine.Config{})
			if lerr == nil {
				t.Fatalf("flipping %s byte %d silently succeeded", path, off)
			}
			// Restore and confirm the snapshot loads again.
			if err := fs.Corrupt(path, off, mask); err != nil {
				t.Fatal(err)
			}
			flips++
		}
	}
	if _, _, err := persist.LoadFS(fs, "db", engine.Config{}); err != nil {
		t.Fatalf("snapshot did not survive the sweep: %v", err)
	}
	t.Logf("%d byte flips, every one detected", flips)
}
