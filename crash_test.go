package recdb

import (
	"errors"
	"fmt"
	"os"
	"testing"

	"recdb/internal/engine"
	"recdb/internal/fault"
	"recdb/internal/persist"
	"recdb/internal/wal"
)

// The crash-sweep workload: seed a database with a primary-keyed table,
// ratings, and a recommender; checkpoint; commit through the WAL;
// checkpoint again; commit more. Faults are injected at every mutating
// I/O operation along the way.
const crashSeedRatings = 5

const crashSeedScript = `
	CREATE TABLE users (uid INT PRIMARY KEY, name TEXT);
	CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT);
	INSERT INTO users VALUES (1, 'a'), (2, 'b'), (3, 'c');
	INSERT INTO ratings VALUES (1, 1, 4.5), (1, 2, 3.0), (2, 1, 5.0), (2, 3, 2.5), (3, 2, 4.0);
	CREATE RECOMMENDER CrashRec ON ratings
		USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF;
`

// crashProgress records how far the workload got before the fault.
type crashProgress struct {
	saved bool // the first checkpoint was acknowledged
	acked int  // ratings inserts acknowledged since then
}

// runCrashWorkload drives the workload over fs, stopping at the first
// error, and reports what was acknowledged.
func runCrashWorkload(fs fault.FS) (crashProgress, error) {
	var p crashProgress
	db := Open()
	db.fs = fs
	defer db.Close()
	if _, err := db.ExecScript(crashSeedScript); err != nil {
		return p, err
	}
	if err := db.SaveTo("db"); err != nil {
		return p, err
	}
	p.saved = true
	ack := func(stmt string) error {
		if _, err := db.Exec(stmt); err != nil {
			return err
		}
		p.acked++
		return nil
	}
	if err := ack("INSERT INTO ratings VALUES (7, 1, 3.5)"); err != nil {
		return p, err
	}
	if err := ack("INSERT INTO ratings VALUES (7, 2, 4.0)"); err != nil {
		return p, err
	}
	if err := db.SaveTo("db"); err != nil {
		return p, err
	}
	if err := ack("INSERT INTO ratings VALUES (8, 1, 2.0)"); err != nil {
		return p, err
	}
	return p, nil
}

// verifyRecovery reopens the database after the crash and asserts the
// durability invariants for the given fault mode.
func verifyRecovery(t *testing.T, fs fault.FS, p crashProgress, mode fault.Mode, tag string) {
	t.Helper()
	db, err := openDirFS(fs, "db", engine.Config{})
	if err != nil {
		// Failing to recover is allowed in exactly two situations: the
		// first checkpoint was never acknowledged (nothing durable was
		// promised — the error just has to be a clean one, which reaching
		// this line without a panic demonstrates), or silent corruption
		// (flip mode) destroyed the only generation — in which case the
		// checksums must have produced a typed error, not garbage.
		if !p.saved {
			return
		}
		var pce *persist.CorruptError
		var wce *wal.CorruptError
		if mode == fault.ModeFlip && (errors.As(err, &pce) || errors.As(err, &wce) || errors.Is(err, persist.ErrNoSnapshot)) {
			return
		}
		t.Fatalf("%s: recovery failed: %v (progress %+v)", tag, err, p)
	}
	defer db.Close()

	rows, err := db.Query("SELECT COUNT(*) FROM ratings")
	if err != nil {
		t.Fatalf("%s: counting ratings: %v", tag, err)
	}
	rows.Next()
	var n int64
	if err := rows.Scan(&n); err != nil {
		t.Fatalf("%s: %v", tag, err)
	}
	want := int64(crashSeedRatings + p.acked)
	if mode == fault.ModeFlip {
		// Silent corruption may cost the newest generation or a WAL
		// suffix: any consistent prefix of the acknowledged history is
		// acceptable, a superset or invented state is not.
		if n < crashSeedRatings || n > want {
			t.Fatalf("%s: ratings = %d, want within [%d, %d]", tag, n, crashSeedRatings, want)
		}
	} else if n != want {
		t.Fatalf("%s: ratings = %d, want %d (progress %+v)", tag, n, want, p)
	}

	// Primary-key uniqueness survived recovery.
	if _, err := db.Exec("INSERT INTO users VALUES (1, 'dup')"); err == nil {
		t.Fatalf("%s: primary key not enforced after recovery", tag)
	}
	// The recommender definition survived and its model was rebuilt.
	recs := db.Recommenders()
	if len(recs) != 1 || recs[0].Name != "CrashRec" {
		t.Fatalf("%s: recommenders after recovery = %+v", tag, recs)
	}
	rec, err := db.Query(`SELECT R.iid FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
		WHERE R.uid = 1`)
	if err != nil || rec.Len() == 0 {
		t.Fatalf("%s: recommendation after recovery: %v, %v", tag, err, rec)
	}
}

// TestCrashSweep crashes the workload at every injected fault point, in
// every fault mode, reopens the database, and asserts the invariants.
// The default run samples the fault points; RECDB_FAULT_SWEEP=1 (CI's
// scheduled job) sweeps them all.
func TestCrashSweep(t *testing.T) {
	// Count the workload's mutating I/O operations with a clean run.
	clean := fault.NewInject(fault.NewMemFS())
	if _, err := runCrashWorkload(clean); err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	total := clean.Ops()
	if total < 30 {
		t.Fatalf("suspiciously few fault points: %d", total)
	}

	full := os.Getenv("RECDB_FAULT_SWEEP") == "1"
	stride := int64(1)
	if !full && total > 40 {
		stride = total/40 + 1
	}
	t.Logf("sweeping %d fault points (stride %d, full=%v)", total, stride, full)

	modes := []struct {
		mode fault.Mode
		name string
	}{
		{fault.ModeFail, "fail"},
		{fault.ModeTorn, "torn"},
		{fault.ModePowerCut, "powercut"},
		{fault.ModeFlip, "flip"},
	}
	for _, m := range modes {
		for n := int64(1); n <= total; n++ {
			if stride > 1 && n%stride != 1 && n != total {
				continue
			}
			tag := fmt.Sprintf("%s@%d", m.name, n)
			mem := fault.NewMemFS()
			inj := fault.NewInject(mem)
			inj.SetPlan(m.mode, n)
			p, err := runCrashWorkload(inj)
			if m.mode != fault.ModeFlip && !inj.Tripped() {
				t.Fatalf("%s: plan did not trip (err %v)", tag, err)
			}
			// Power-cut at the worst moment: discard everything unsynced.
			inj.Crash()
			mem.Restart()
			verifyRecovery(t, mem, p, m.mode, tag)
		}
	}
}

// TestSnapshotCorruptionSweep flips bytes across every file of a saved
// snapshot and asserts Load always returns a clean typed error — never a
// panic, never silent acceptance. RECDB_FAULT_SWEEP=1 flips every byte;
// the default run samples.
func TestSnapshotCorruptionSweep(t *testing.T) {
	fs := fault.NewMemFS()
	db := Open()
	db.fs = fs
	if _, err := db.ExecScript(crashSeedScript); err != nil {
		t.Fatal(err)
	}
	if err := db.SaveTo("db"); err != nil {
		t.Fatal(err)
	}
	db.Close()

	// The single generation's files: corrupting any byte of any of them
	// must fail the load (there is no older generation to fall back to).
	genDir := "db/gen-000001"
	names, err := fs.ReadDir(genDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 3 { // manifest + at least two tables
		t.Fatalf("generation files: %v", names)
	}
	stride := int64(17)
	if os.Getenv("RECDB_FAULT_SWEEP") == "1" {
		stride = 1
	}
	flips := 0
	for _, name := range names {
		path := genDir + "/" + name
		size, err := fs.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		for off := int64(0); off < size; off += stride {
			mask := byte(1) << uint(off%8)
			if err := fs.Corrupt(path, off, mask); err != nil {
				t.Fatal(err)
			}
			_, _, lerr := persist.LoadFS(fs, "db", engine.Config{})
			if lerr == nil {
				t.Fatalf("flipping %s byte %d silently succeeded", path, off)
			}
			// Restore and confirm the snapshot loads again.
			if err := fs.Corrupt(path, off, mask); err != nil {
				t.Fatal(err)
			}
			flips++
		}
	}
	if _, _, err := persist.LoadFS(fs, "db", engine.Config{}); err != nil {
		t.Fatalf("snapshot did not survive the sweep: %v", err)
	}
	t.Logf("%d byte flips, every one detected", flips)
}
