// Analytics: the exploration workloads of the paper's introduction — a
// data scientist mixing ordinary analytics (GROUP BY, HAVING, DISTINCT)
// with in-DBMS recommendation, inspecting plans with EXPLAIN, and using
// the non-personalized Popularity recommender (§II class 1) next to
// collaborative filtering.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"recdb"
)

func main() {
	db := recdb.Open()
	defer db.Close()
	loadData(db)

	// Plain analytics: rating distribution per genre.
	run(db, "Average rating and support per genre", `
		SELECT M.genre, COUNT(*) AS n, AVG(R.ratingval) AS mean
		FROM ratings R, movies M
		WHERE M.mid = R.iid
		GROUP BY M.genre
		HAVING COUNT(*) >= 20
		ORDER BY AVG(R.ratingval) DESC`)

	// The §II non-personalized recommender, expressed as SQL.
	run(db, "Global top-5 movies by damped popularity (SQL form)", `
		SELECT R.iid, AVG(R.ratingval) AS score, COUNT(*) AS support
		FROM ratings R
		GROUP BY R.iid
		HAVING COUNT(*) >= 5
		ORDER BY AVG(R.ratingval) DESC
		LIMIT 5`)

	// ... and as a built-in recommender algorithm.
	db.MustExec(`CREATE RECOMMENDER PopRec ON ratings
		USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING Popularity`)
	run(db, "Same idea via CREATE RECOMMENDER ... USING Popularity", `
		SELECT R.iid, R.ratingval FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval USING Popularity
		WHERE R.uid = 3
		ORDER BY R.ratingval DESC LIMIT 5`)

	// Aggregating over recommendation output: how optimistic is the model
	// per user?
	db.MustExec(`CREATE RECOMMENDER CFRec ON ratings
		USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF`)
	run(db, "Average predicted rating per user (ItemCosCF, first 5 users)", `
		SELECT R.uid, COUNT(*) AS unseen, AVG(R.ratingval) AS optimism
		FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
		WHERE R.uid IN (1, 2, 3, 4, 5)
		GROUP BY R.uid
		ORDER BY R.uid`)

	// DISTINCT + LIKE.
	run(db, "Genres containing 'i'", `
		SELECT DISTINCT genre FROM movies WHERE genre LIKE '%i%' ORDER BY genre`)

	// EXPLAIN before/after materialization.
	explain(db, "Plan before materialization", topKQuery)
	if err := db.MaterializeUser("CFRec", 3); err != nil {
		log.Fatal(err)
	}
	explain(db, "Plan after materializing user 3", topKQuery)
}

const topKQuery = `SELECT R.iid, R.ratingval FROM ratings R
	RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
	WHERE R.uid = 3
	ORDER BY R.ratingval DESC LIMIT 10`

func loadData(db *recdb.DB) {
	db.MustExec(`CREATE TABLE movies (mid INT PRIMARY KEY, name TEXT, genre TEXT)`)
	db.MustExec(`CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT)`)
	genres := []string{"Action", "Suspense", "Sci-Fi", "Drama", "Comedy"}
	var movieRows, ratingRows []string
	for m := 1; m <= 120; m++ {
		movieRows = append(movieRows, fmt.Sprintf("(%d, 'Movie %d', '%s')", m, m, genres[m%len(genres)]))
	}
	for u := 1; u <= 80; u++ {
		for m := 1; m <= 120; m++ {
			// Feistel-style mix; multipliers with low-bit structure (e.g.
			// both ≡ 1 mod 8) would partition users into clusters that rate
			// identical item sets and starve the similarity lists.
			h := uint32(u*73856093) ^ uint32(m*19349663)
			h = (h ^ (h >> 13)) * 0x5bd1e995
			h ^= h >> 15
			if h%8 != 0 {
				continue
			}
			base := 2.5 + 1.2*math.Sin(float64(u%7))*math.Cos(float64(m%5))
			rating := math.Max(1, math.Min(5, math.Round(base+float64(h%3)-1)))
			ratingRows = append(ratingRows, fmt.Sprintf("(%d, %d, %g)", u, m, rating))
		}
	}
	db.MustExec("INSERT INTO movies VALUES " + strings.Join(movieRows, ", "))
	for start := 0; start < len(ratingRows); start += 500 {
		end := start + 500
		if end > len(ratingRows) {
			end = len(ratingRows)
		}
		db.MustExec("INSERT INTO ratings VALUES " + strings.Join(ratingRows[start:end], ", "))
	}
	fmt.Printf("loaded 80 users, 120 movies, %d ratings\n\n", len(ratingRows))
}

func run(db *recdb.DB, title, query string) {
	rows, err := db.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(title)
	for rows.Next() {
		cells := make([]string, len(rows.Row()))
		for i, v := range rows.Row() {
			cells[i] = v.String()
		}
		fmt.Printf("  %s\n", strings.Join(cells, " | "))
	}
	fmt.Println()
}

func explain(db *recdb.DB, title, query string) {
	rows, err := db.Query("EXPLAIN " + query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(title)
	for rows.Next() {
		fmt.Printf("  %s\n", rows.Row()[0].String())
	}
	fmt.Println()
}
