// POI: the location-aware case study of §V — Recommenders 2-3 and Queries
// 6-8. Hotels and restaurants carry coordinates; the spatial functions
// (ST_Contains, ST_DWithin, ST_Distance) and the combined-score function
// CScore compose with the RECOMMEND clause exactly as in the paper.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"recdb"
)

func main() {
	db := recdb.Open()
	defer db.Close()

	loadPOIs(db)

	// Recommender 2: an ItemCosCF recommender on HotelRatings.
	db.MustExec(`CREATE RECOMMENDER POI_ItemCosCF_Rec ON HotelRatings
		USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF`)
	// Recommender 3: a recommender on RestRatings (the paper's example
	// uses SVD in the statement).
	db.MustExec(`CREATE RECOMMENDER POI_Rest_Rec ON RestRatings
		USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING UserPearCF`)

	// Query 6: hotels for user 1 within the 'San Diego' urban area.
	run(db, "Query 6 — hotels in San Diego for user 1", `
		SELECT H.name, R.ratingval
		FROM HotelRatings AS R, Hotels AS H, City AS C
		RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
		WHERE R.uid = 1 AND R.iid = H.vid AND C.name = 'San Diego'
		  AND ST_Contains(C.geom, H.geom)
		ORDER BY R.ratingval DESC`)

	// Query 7: restaurants within range of the user's location.
	run(db, "Query 7 — restaurants within 40 units of (10, 10)", `
		SELECT V.name, R.ratingval FROM RestRatings AS R, Restaurants AS V
		RECOMMEND R.iid TO R.uid ON R.ratingval USING UserPearCF
		WHERE R.uid = 1 AND R.iid = V.vid
		  AND ST_DWithin(ST_Point(10, 10), V.geom, 40)
		ORDER BY R.ratingval DESC LIMIT 10`)

	// Query 8: rank by CScore — predicted rating damped by distance.
	run(db, "Query 8 — top-3 restaurants by combined score", `
		SELECT V.name, R.ratingval,
		       CScore(R.ratingval, ST_Distance(V.geom, ST_Point(10, 10))) AS combined
		FROM RestRatings AS R, Restaurants AS V
		RECOMMEND R.iid TO R.uid ON R.ratingval USING UserPearCF
		WHERE R.uid = 1 AND R.iid = V.vid
		ORDER BY CScore(R.ratingval, ST_Distance(V.geom, ST_Point(10, 10))) DESC
		LIMIT 3`)

	// EXPLAIN shows the spatial access path for Query 7.
	rows, err := db.Query(`EXPLAIN SELECT V.name FROM RestRatings AS R, Restaurants AS V
		RECOMMEND R.iid TO R.uid ON R.ratingval USING UserPearCF
		WHERE R.uid = 1 AND R.iid = V.vid
		  AND ST_DWithin(ST_Point(10, 10), V.geom, 40)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Query 7 plan:")
	for rows.Next() {
		fmt.Printf("  %s\n", rows.Row()[0].Text())
	}
}

func loadPOIs(db *recdb.DB) {
	db.MustExec(`CREATE TABLE City (name TEXT, geom GEOMETRY)`)
	db.MustExec(`INSERT INTO City VALUES
		('San Diego', 'POLYGON((0 0, 100 0, 100 100, 0 100))'),
		('Austin',    'POLYGON((200 0, 300 0, 300 100, 200 100))')`)

	db.MustExec(`CREATE TABLE Hotels (vid INT PRIMARY KEY, name TEXT, geom GEOMETRY)`)
	db.MustExec(`CREATE TABLE Restaurants (vid INT PRIMARY KEY, name TEXT, geom GEOMETRY)`)
	var hotels, rests []string
	for i := 1; i <= 40; i++ {
		// Half the POIs in San Diego, half in Austin, on a deterministic grid.
		x := float64((i * 13) % 95)
		y := float64((i * 29) % 95)
		if i%2 == 0 {
			x += 200
		}
		hotels = append(hotels, fmt.Sprintf("(%d, 'Hotel %d', 'POINT(%g %g)')", i, i, x, y))
		rests = append(rests, fmt.Sprintf("(%d, 'Restaurant %d', 'POINT(%g %g)')", i, i, y, x))
	}
	db.MustExec("INSERT INTO Hotels VALUES " + strings.Join(hotels, ", "))
	db.MustExec("INSERT INTO Restaurants VALUES " + strings.Join(rests, ", "))
	// R-tree indexes (the PostGIS-GiST stand-in): constant-geometry
	// predicates like Query 7's ST_DWithin become index scans.
	db.MustExec("CREATE INDEX hotels_geom ON Hotels (geom)")
	db.MustExec("CREATE INDEX rests_geom ON Restaurants (geom)")

	db.MustExec(`CREATE TABLE HotelRatings (uid INT, iid INT, ratingval FLOAT)`)
	db.MustExec(`CREATE TABLE RestRatings (uid INT, iid INT, ratingval FLOAT)`)
	load := func(table string, phase int) {
		var rows []string
		for u := 1; u <= 30; u++ {
			for v := 1; v <= 40; v++ {
				// Mixing hash: a modular mask would partition users and
				// items into disjoint co-rating classes.
				h := uint32(u*2654435761) ^ uint32(v*40503) ^ uint32(phase*97)
				h = (h ^ (h >> 15)) * 0x2c1b3c6d
				if h%5 != 0 {
					continue
				}
				base := 2.5 + 1.5*math.Sin(float64(u*v+phase))
				rating := math.Max(1, math.Min(5, math.Round(base+1)))
				rows = append(rows, fmt.Sprintf("(%d, %d, %g)", u, v, rating))
			}
		}
		db.MustExec(fmt.Sprintf("INSERT INTO %s VALUES %s", table, strings.Join(rows, ", ")))
	}
	load("HotelRatings", 0)
	load("RestRatings", 3)
	fmt.Println("loaded 2 cities, 40 hotels, 40 restaurants, and their ratings")
	fmt.Println()
}

func run(db *recdb.DB, title, query string) {
	rows, err := db.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s  [plan: %s]\n", title, rows.Strategy())
	for rows.Next() {
		cells := make([]string, len(rows.Row()))
		for i, v := range rows.Row() {
			cells[i] = v.String()
		}
		fmt.Printf("  %s\n", strings.Join(cells, " | "))
	}
	fmt.Printf("(%d rows)\n\n", rows.Len())
}
