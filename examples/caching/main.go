// Caching: a walkthrough of §IV-C/D — pre-computation in the
// RecScoreIndex, the hotness-driven caching algorithm, model maintenance
// on inserts, and the query-plan changes each one causes.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"recdb"
)

func main() {
	db := recdb.Open(
		recdb.WithHotnessThreshold(0.3),
		recdb.WithRebuildThresholdPct(10),
	)
	defer db.Close()

	loadRatings(db)
	db.MustExec(`CREATE RECOMMENDER CachedRec ON ratings
		USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF`)

	topK := func(user int64) (time.Duration, string) {
		start := time.Now()
		rows, err := db.Query(fmt.Sprintf(`SELECT R.iid, R.ratingval FROM ratings R
			RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
			WHERE R.uid = %d ORDER BY R.ratingval DESC LIMIT 10`, user))
		if err != nil {
			log.Fatal(err)
		}
		return time.Since(start), rows.Strategy()
	}

	// 1. Cold: every query predicts online.
	d, plan := topK(5)
	fmt.Printf("cold top-10 for user 5:     %8v  [plan: %s]\n", d.Round(time.Microsecond), plan)

	// 2. Pre-compute user 5's RecTree: the planner switches to the
	// RecScoreIndex (Algorithm 3) and latency drops.
	if err := db.MaterializeUser("CachedRec", 5); err != nil {
		log.Fatal(err)
	}
	d, plan = topK(5)
	fmt.Printf("warm top-10 for user 5:     %8v  [plan: %s]\n", d.Round(time.Microsecond), plan)

	// 3. Hotness-driven caching: user 6 issues many queries (demand) while
	// item 3 receives rating updates (consumption). The cache manager's
	// next pass materializes the hot pairs on its own.
	for i := 0; i < 40; i++ {
		topK(6)
	}
	db.MustExec(`INSERT INTO ratings VALUES (41, 3, 4.0)`) // consumption on item 3
	dec, err := db.RunCacheMaintenance("CachedRec")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncache maintenance: admitted %d pairs, evicted %d\n", dec.Admitted, dec.Evicted)

	// 4. Model maintenance: inserts beyond N% of the build size trigger a
	// rebuild, which invalidates the RecScoreIndex (stale predictions are
	// never served).
	var inserts []string
	for i := 0; i < 50; i++ {
		inserts = append(inserts, fmt.Sprintf("(%d, %d, %g)", 30+i%10, 1+i%20, float64(1+i%5)))
	}
	db.MustExec("INSERT INTO ratings VALUES " + strings.Join(inserts, ", "))
	d, plan = topK(5)
	fmt.Printf("after rebuild, user 5:      %8v  [plan: %s]  (index invalidated)\n",
		d.Round(time.Microsecond), plan)

	// 5. Full materialization restores the fast path for everyone.
	if err := db.Materialize("CachedRec"); err != nil {
		log.Fatal(err)
	}
	d, plan = topK(5)
	fmt.Printf("after full materialization: %8v  [plan: %s]\n", d.Round(time.Microsecond), plan)

	// 6. A background daemon can run the cache manager periodically, as
	// the paper's asynchronous materialization manager does.
	if err := db.StartCacheDaemon("CachedRec", 50*time.Millisecond); err != nil {
		log.Fatal(err)
	}
	time.Sleep(120 * time.Millisecond)
	if err := db.StopCacheDaemon("CachedRec"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbackground cache daemon ran and stopped cleanly")
}

func loadRatings(db *recdb.DB) {
	db.MustExec(`CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT)`)
	var rows []string
	for u := 1; u <= 40; u++ {
		for i := 1; i <= 60; i++ {
			if (u*5+i*3)%7 != 0 {
				continue
			}
			rows = append(rows, fmt.Sprintf("(%d, %d, %d)", u, i, 1+(u+i)%5))
		}
	}
	db.MustExec("INSERT INTO ratings VALUES " + strings.Join(rows, ", "))
	fmt.Printf("loaded %d ratings (40 users, 60 items)\n\n", len(rows))
}
