// Movies: a MovieLens-style workload exercising every query shape from
// §III-§IV of the paper — full prediction (Query 2), selective prediction
// (Query 3), recommendation + join (Query 4), top-k over a join with a
// second algorithm (Query 5) — and comparing the optimizer's plan choices.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"recdb"
)

const (
	numUsers  = 120
	numMovies = 200
)

var genres = []string{"Action", "Suspense", "Sci-Fi", "Drama", "Comedy"}

func main() {
	db := recdb.Open(recdb.WithSVD(8, 30, 0.02, 0.05))
	defer db.Close()

	loadData(db)

	// Two recommenders on the same ratings table, different algorithms.
	db.MustExec(`CREATE RECOMMENDER ItemRec ON ratings
		USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF`)
	db.MustExec(`CREATE RECOMMENDER SVDRec ON ratings
		USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval USING SVD`)

	// Query 3 shape: predict ratings for a handful of named movies.
	run(db, "Predict user 7's rating for movies 1-5 (ItemCosCF)", `
		SELECT R.iid, R.ratingval FROM ratings AS R
		RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
		WHERE R.uid = 7 AND R.iid IN (1, 2, 3, 4, 5)`)

	// Query 4 shape: recommendation + join + genre filter.
	run(db, "Predict user 7's ratings for Action movies", `
		SELECT R.uid, M.name, R.ratingval FROM ratings AS R, movies AS M
		RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
		WHERE R.uid = 7 AND M.mid = R.iid AND M.genre = 'Action'
		ORDER BY R.ratingval DESC LIMIT 5`)

	// Query 5 shape: top-5 Action movies by the SVD recommender.
	run(db, "Top-5 Action movies for user 7 (SVD)", `
		SELECT M.name, R.ratingval FROM ratings R, movies M
		RECOMMEND R.iid TO R.uid ON R.ratingval USING SVD
		WHERE R.uid = 7 AND M.mid = R.iid AND M.genre = 'Action'
		ORDER BY R.ratingval DESC LIMIT 5`)

	// Pre-compute user 7's scores and watch the plan switch to the
	// RecScoreIndex (§IV-C).
	if err := db.MaterializeUser("ItemRec", 7); err != nil {
		log.Fatal(err)
	}
	run(db, "Top-10 for user 7 after materialization", `
		SELECT R.uid, R.iid, R.ratingval FROM ratings R
		RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
		WHERE R.uid = 7
		ORDER BY R.ratingval DESC LIMIT 10`)

	// The two algorithms rank differently but agree on scale.
	compareAlgorithms(db)
}

// loadData synthesizes a deterministic rating matrix with taste structure:
// even users favour even movies, odd users favour odd ones.
func loadData(db *recdb.DB) {
	db.MustExec(`CREATE TABLE movies (mid INT PRIMARY KEY, name TEXT, director TEXT, genre TEXT)`)
	db.MustExec(`CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT)`)

	var movieRows []string
	for m := 1; m <= numMovies; m++ {
		movieRows = append(movieRows, fmt.Sprintf("(%d, 'Movie %d', 'Director %d', '%s')",
			m, m, m%17, genres[m%len(genres)]))
	}
	db.MustExec("INSERT INTO movies VALUES " + strings.Join(movieRows, ", "))

	var ratingRows []string
	for u := 1; u <= numUsers; u++ {
		for m := 1; m <= numMovies; m++ {
			// ~10% density via a mixing hash (a plain modular mask would
			// partition users into disjoint co-rating classes and starve
			// the similarity lists).
			h := uint32(u*73856093) ^ uint32(m*19349663)
			h = (h ^ (h >> 13)) * 0x5bd1e995
			if h%10 != 0 {
				continue
			}
			base := 3.0
			if u%2 == m%2 {
				base = 4.2
			} else {
				base = 2.2
			}
			noise := float64((u*7+m*13)%10)/10 - 0.45
			rating := math.Max(1, math.Min(5, math.Round(base+noise)))
			ratingRows = append(ratingRows, fmt.Sprintf("(%d, %d, %g)", u, m, rating))
		}
	}
	for start := 0; start < len(ratingRows); start += 500 {
		end := start + 500
		if end > len(ratingRows) {
			end = len(ratingRows)
		}
		db.MustExec("INSERT INTO ratings VALUES " + strings.Join(ratingRows[start:end], ", "))
	}
	fmt.Printf("loaded %d users, %d movies, %d ratings\n\n", numUsers, numMovies, len(ratingRows))
}

func run(db *recdb.DB, title, query string) {
	rows, err := db.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s  [plan: %s]\n", title, rows.Strategy())
	shown := 0
	for rows.Next() && shown < 5 {
		cells := make([]string, len(rows.Row()))
		for i, v := range rows.Row() {
			cells[i] = v.String()
		}
		fmt.Printf("  %s\n", strings.Join(cells, " | "))
		shown++
	}
	if rows.Len() > shown {
		fmt.Printf("  ... (%d rows total)\n", rows.Len())
	}
	fmt.Println()
}

func compareAlgorithms(db *recdb.DB) {
	top := func(algo string) map[int64]float64 {
		rows, err := db.Query(fmt.Sprintf(`SELECT R.iid, R.ratingval FROM ratings R
			RECOMMEND R.iid TO R.uid ON R.ratingval USING %s
			WHERE R.uid = 8 ORDER BY R.ratingval DESC LIMIT 10`, algo))
		if err != nil {
			log.Fatal(err)
		}
		out := map[int64]float64{}
		for rows.Next() {
			var iid int64
			var score float64
			if err := rows.Scan(&iid, &score); err != nil {
				log.Fatal(err)
			}
			out[iid] = score
		}
		return out
	}
	itemTop := top("ItemCosCF")
	svdTop := top("SVD")
	overlap := 0
	for iid := range itemTop {
		if _, ok := svdTop[iid]; ok {
			overlap++
		}
	}
	fmt.Printf("ItemCosCF and SVD top-10 for user 8 overlap on %d/10 movies\n", overlap)
}
