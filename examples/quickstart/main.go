// Quickstart: the paper's running example (Figure 1) end to end — create
// the movie tables, load the ratings, create a recommender with the
// paper's CREATE RECOMMENDER statement, and run Query 1.
package main

import (
	"fmt"
	"log"

	"recdb"
)

func main() {
	db := recdb.Open()
	defer db.Close()

	// Figure 1: users, movies, and ratings.
	db.MustExec(`CREATE TABLE users (uid INT PRIMARY KEY, name TEXT, city TEXT, age INT, gender TEXT)`)
	db.MustExec(`CREATE TABLE movies (mid INT PRIMARY KEY, name TEXT, director TEXT, genre TEXT)`)
	db.MustExec(`CREATE TABLE ratings (uid INT, iid INT, ratingval FLOAT)`)
	db.MustExec(`INSERT INTO users VALUES
		(1, 'Alice', 'Minneapolis, MN', 18, 'Female'),
		(2, 'Bob', 'Austin, TX', 27, 'Male'),
		(3, 'Carol', 'Minneapolis, MN', 45, 'Female'),
		(4, 'Eve', 'San Diego, CA', 34, 'Female')`)
	db.MustExec(`INSERT INTO movies VALUES
		(1, 'Spartacus', 'Stanley Kubrick', 'Action'),
		(2, 'Inception', 'Christopher Nolan', 'Suspense'),
		(3, 'The Matrix', 'Lana Wachowski', 'Sci-Fi')`)
	db.MustExec(`INSERT INTO ratings VALUES
		(1, 1, 1.5),
		(2, 2, 3.5), (2, 1, 4.5), (2, 3, 2),
		(3, 2, 1), (3, 1, 2),
		(4, 2, 1)`)

	// Recommender 1: GeneralRec, an ItemCosCF recommender on Ratings.
	db.MustExec(`CREATE RECOMMENDER GeneralRec ON ratings
		USERS FROM uid ITEMS FROM iid RATINGS FROM ratingval
		USING ItemCosCF`)
	build, _ := db.ModelBuildTime("GeneralRec")
	fmt.Printf("GeneralRec model built in %v\n\n", build)

	// Query 1: return ten movies to user 1, best predictions first.
	rows, err := db.Query(`SELECT R.uid, R.iid, R.ratingval FROM ratings AS R
		RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
		WHERE R.uid = 1
		ORDER BY R.ratingval DESC LIMIT 10`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Recommendations for Alice (plan: %s):\n", rows.Strategy())
	for rows.Next() {
		var uid, iid int64
		var score float64
		if err := rows.Scan(&uid, &iid, &score); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  movie %d — predicted rating %.3f\n", iid, score)
	}

	// The same query with movie names: RECOMMEND composed with a join.
	rows, err = db.Query(`SELECT M.name, R.ratingval FROM ratings R, movies M
		RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF
		WHERE R.uid = 1 AND M.mid = R.iid
		ORDER BY R.ratingval DESC LIMIT 10`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nWith titles (plan: %s):\n", rows.Strategy())
	for rows.Next() {
		var name string
		var score float64
		if err := rows.Scan(&name, &score); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %.3f\n", name, score)
	}
}
